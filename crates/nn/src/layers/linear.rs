//! Fully connected layer.

use crate::graph::{NodeId, Tape};
use crate::init::Initializer;
use crate::kernels;
use crate::params::{ParamId, ParamStore, QuantMode};
use rotom_rng::rngs::StdRng;

/// `y = x W + b` with Xavier-initialized `W` and zero-initialized `b`.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a `in_dim -> out_dim` linear layer (with bias).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        Self::with_bias(store, rng, name, in_dim, out_dim, true)
    }

    /// Register a linear layer, optionally without bias.
    pub fn with_bias(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.alloc(
            format!("{name}.w"),
            in_dim,
            out_dim,
            Initializer::XavierUniform,
            rng,
        );
        let b = bias.then(|| store.alloc(format!("{name}.b"), 1, out_dim, Initializer::Zeros, rng));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight and (optional) bias parameter ids.
    pub fn params(&self) -> (crate::params::ParamId, Option<crate::params::ParamId>) {
        (self.w, self.b)
    }

    /// Apply the layer to an `m x in_dim` node.
    pub fn forward(&self, tape: &mut Tape, x: NodeId, store: &ParamStore) -> NodeId {
        let w = tape.param(self.w, store);
        let y = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bn = tape.param(b, store);
                tape.add_row(y, bn)
            }
            None => y,
        }
    }

    /// Forward-only `y = act(x·W + b)` over `rows` input rows into `out`
    /// (`rows × out_dim`), bit-identical to the tape's `matmul → add_row →
    /// gelu` chain: the packed-panel decision replicates `Tape::matmul`
    /// exactly (panels only above the tiled threshold), and the fused
    /// epilogue applies the same per-element roundings.
    pub fn infer_forward(
        &self,
        x: &[f32],
        rows: usize,
        act: kernels::Act,
        store: &ParamStore,
        pool: &crate::pool::RotomPool,
        out: &mut [f32],
    ) {
        let w = store.value(self.w);
        let packs = store.packs(self.w);
        let above_small = rows * self.in_dim * self.out_dim >= kernels::SMALL_FLOPS;
        let bias = self.b.map(|b| store.value(b));
        // Quantized tier: opt-in per store, and only for GEMMs the f32 path
        // would tile anyway — sub-threshold shapes stay on the (cheaper
        // there) f32 naive kernel, so tiny heads/meta-models never pay
        // quantization overhead.
        if store.quant_mode() == QuantMode::I8 && above_small {
            if let Some(qb) = packs.quant(w) {
                kernels::matmul_bias_act_i8_into(
                    x,
                    qb,
                    bias.map(|t| t.data()),
                    act,
                    rows,
                    self.in_dim,
                    self.out_dim,
                    pool,
                    out,
                );
                return;
            }
        }
        let pk = if above_small { packs.direct(w) } else { None };
        kernels::matmul_bias_act_into(
            x,
            w.data(),
            pk,
            bias.map(|t| t.data()),
            act,
            rows,
            self.in_dim,
            self.out_dim,
            pool,
            out,
        );
    }

    /// Band replay of [`infer_forward`](Self::infer_forward): compute only
    /// the `band_len` output rows whose inputs are `x_band`, exactly as a
    /// `full_rows`-row forward would have computed them (see
    /// [`kernels::band_rows`]). The bias/activation epilogue is per-row, so
    /// it composes with the band without affecting values.
    pub fn infer_forward_band(
        &self,
        x_band: &[f32],
        full_rows: usize,
        band_len: usize,
        act: kernels::Act,
        store: &ParamStore,
        out: &mut [f32],
    ) {
        let w = store.value(self.w);
        let packs = store.packs(self.w);
        let above_small = full_rows * self.in_dim * self.out_dim >= kernels::SMALL_FLOPS;
        let bias = self.b.map(|b| store.value(b));
        // Same quant gate as `infer_forward`, on the *full* logical shape —
        // band and full replay must agree on the tier or band replay would
        // not be self-consistent with full scoring.
        if store.quant_mode() == QuantMode::I8 && above_small {
            if let Some(qb) = packs.quant(w) {
                kernels::matmul_band_i8_into(
                    x_band,
                    qb,
                    bias.map(|t| t.data()),
                    act,
                    band_len,
                    self.in_dim,
                    self.out_dim,
                    out,
                );
                return;
            }
        }
        let pk = if above_small { packs.direct(w) } else { None };
        kernels::matmul_band_into(
            x_band,
            w.data(),
            pk,
            full_rows,
            band_len,
            self.in_dim,
            self.out_dim,
            out,
        );
        kernels::bias_act_apply(out, band_len, self.out_dim, bias.map(|t| t.data()), act);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rotom_rng::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 7);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(3, 4));
        let y = lin.forward(&mut tape, x, &store);
        assert_eq!((tape.value(y).rows(), tape.value(y).cols()), (3, 7));
    }

    #[test]
    fn bias_free_layer_maps_zero_to_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::with_bias(&mut store, &mut rng, "l", 4, 4, false);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(1, 4));
        let y = lin.forward(&mut tape, x, &store);
        assert!(tape.value(y).data().iter().all(|&v| v == 0.0));
    }
}
