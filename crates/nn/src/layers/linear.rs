//! Fully connected layer.

use crate::graph::{NodeId, Tape};
use crate::init::Initializer;
use crate::params::{ParamId, ParamStore};
use rotom_rng::rngs::StdRng;

/// `y = x W + b` with Xavier-initialized `W` and zero-initialized `b`.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a `in_dim -> out_dim` linear layer (with bias).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        Self::with_bias(store, rng, name, in_dim, out_dim, true)
    }

    /// Register a linear layer, optionally without bias.
    pub fn with_bias(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.alloc(
            format!("{name}.w"),
            in_dim,
            out_dim,
            Initializer::XavierUniform,
            rng,
        );
        let b = bias.then(|| store.alloc(format!("{name}.b"), 1, out_dim, Initializer::Zeros, rng));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight and (optional) bias parameter ids.
    pub fn params(&self) -> (crate::params::ParamId, Option<crate::params::ParamId>) {
        (self.w, self.b)
    }

    /// Apply the layer to an `m x in_dim` node.
    pub fn forward(&self, tape: &mut Tape, x: NodeId, store: &ParamStore) -> NodeId {
        let w = tape.param(self.w, store);
        let y = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bn = tape.param(b, store);
                tape.add_row(y, bn)
            }
            None => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rotom_rng::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 7);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(3, 4));
        let y = lin.forward(&mut tape, x, &store);
        assert_eq!((tape.value(y).rows(), tape.value(y).cols()), (3, 7));
    }

    #[test]
    fn bias_free_layer_maps_zero_to_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::with_bias(&mut store, &mut rng, "l", 4, 4, false);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(1, 4));
        let y = lin.forward(&mut tape, x, &store);
        assert!(tape.value(y).data().iter().all(|&v| v == 0.0));
    }
}
