//! Token and positional embeddings.

use crate::graph::{NodeId, Tape};
use crate::init::Initializer;
use crate::params::{ParamId, ParamStore};
use rotom_rng::rngs::StdRng;

/// Learned embedding table mapping token ids to `dim`-wide rows.
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Register a `vocab x dim` embedding table (N(0, 0.02) init, BERT-style).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let table = store.alloc(name, vocab, dim, Initializer::Normal(0.02), rng);
        Self { table, vocab, dim }
    }

    /// Vocabulary size (number of rows).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Underlying parameter id (e.g. for weight tying with an output head).
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Gather embeddings for `ids`, producing an `ids.len() x dim` node.
    ///
    /// Panics (debug) if any id is out of vocabulary.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, ids: &[usize]) -> NodeId {
        debug_assert!(ids.iter().all(|&i| i < self.vocab), "token id out of range");
        tape.embedding(self.table, store, ids)
    }

    /// Forward-only gather into `out` (`ids.len() × dim`), bit-identical to
    /// the tape's `embedding` op (a row copy either way).
    pub fn infer_gather(&self, store: &ParamStore, ids: &[usize], out: &mut [f32]) {
        debug_assert!(ids.iter().all(|&i| i < self.vocab), "token id out of range");
        debug_assert_eq!(out.len(), ids.len() * self.dim);
        let table = store.value(self.table);
        for (i, &id) in ids.iter().enumerate() {
            out[i * self.dim..(i + 1) * self.dim].copy_from_slice(table.row_slice(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    #[test]
    fn lookup_shape_and_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, &mut rng, "tok", 10, 6);
        let mut tape = Tape::new();
        let e = emb.forward(&mut tape, &store, &[3, 3, 7]);
        assert_eq!((tape.value(e).rows(), tape.value(e).cols()), (3, 6));
        assert_eq!(tape.value(e).row_slice(0), tape.value(e).row_slice(1));
        assert_ne!(tape.value(e).row_slice(0), tape.value(e).row_slice(2));
    }
}
