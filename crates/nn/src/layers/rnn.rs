//! Gated recurrent unit, used by the DeepMatcher baseline.

use super::linear::Linear;
use crate::graph::{NodeId, Tape};
use crate::params::ParamStore;
use crate::tensor::Tensor;
use rotom_rng::rngs::StdRng;

/// A single-direction GRU over a `T x in_dim` sequence.
pub struct Gru {
    /// Input projections for update / reset / candidate gates.
    wz: Linear,
    wr: Linear,
    wh: Linear,
    /// Hidden projections (bias folded into the input projections).
    uz: Linear,
    ur: Linear,
    uh: Linear,
    hidden: usize,
}

impl Gru {
    /// Register a GRU with the given input and hidden widths.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let lin = |store: &mut ParamStore, rng: &mut StdRng, suffix: &str, i: usize, bias: bool| {
            Linear::with_bias(store, rng, &format!("{name}.{suffix}"), i, hidden, bias)
        };
        Self {
            wz: lin(store, rng, "wz", in_dim, true),
            wr: lin(store, rng, "wr", in_dim, true),
            wh: lin(store, rng, "wh", in_dim, true),
            uz: lin(store, rng, "uz", hidden, false),
            ur: lin(store, rng, "ur", hidden, false),
            uh: lin(store, rng, "uh", hidden, false),
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Run the GRU over the rows of `x` (`T x in_dim`), returning all hidden
    /// states stacked as `T x hidden`.
    pub fn forward(&self, tape: &mut Tape, x: NodeId, store: &ParamStore) -> NodeId {
        let t_len = tape.value(x).rows();
        let mut h = tape.input(Tensor::zeros(1, self.hidden));
        let mut states = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let xt = tape.slice_rows(x, t, 1);
            // z_t = sigmoid(W_z x_t + U_z h)
            let zx = self.wz.forward(tape, xt, store);
            let zh = self.uz.forward(tape, h, store);
            let z = tape.add(zx, zh);
            let z = tape.sigmoid(z);
            // r_t = sigmoid(W_r x_t + U_r h)
            let rx = self.wr.forward(tape, xt, store);
            let rh = self.ur.forward(tape, h, store);
            let r = tape.add(rx, rh);
            let r = tape.sigmoid(r);
            // h~ = tanh(W_h x_t + U_h (r ⊙ h))
            let rh_gated = tape.mul(r, h);
            let cx = self.wh.forward(tape, xt, store);
            let ch = self.uh.forward(tape, rh_gated, store);
            let cand = tape.add(cx, ch);
            let cand = tape.tanh(cand);
            // h = (1 - z) ⊙ h + z ⊙ h~
            let neg_z = tape.scale(z, -1.0);
            let one_minus_z = tape.add_const(neg_z, 1.0);
            let keep = tape.mul(one_minus_z, h);
            let update = tape.mul(z, cand);
            h = tape.add(keep, update);
            states.push(h);
        }
        tape.concat_rows(&states)
    }

    /// Run the GRU and return only the final hidden state (`1 x hidden`).
    pub fn forward_last(&self, tape: &mut Tape, x: NodeId, store: &ParamStore) -> NodeId {
        let all = self.forward(tape, x, store);
        let t_len = tape.value(all).rows();
        tape.slice_rows(all, t_len - 1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    #[test]
    fn gru_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, &mut rng, "gru", 6, 10);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::full(4, 6, 0.3));
        let all = gru.forward(&mut tape, x, &store);
        assert_eq!((tape.value(all).rows(), tape.value(all).cols()), (4, 10));
        let last = gru.forward_last(&mut tape, x, &store);
        assert_eq!(tape.value(last).row_slice(0), tape.value(all).row_slice(3));
    }

    #[test]
    fn gru_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, &mut rng, "gru", 4, 5);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::full(3, 4, 0.5));
        let last = gru.forward_last(&mut tape, x, &store);
        let loss = tape.sum_all(last);
        store.zero_grad();
        tape.backward(loss, &mut store);
        assert!(
            store.grad_norm() > 0.0,
            "no gradient reached GRU parameters"
        );
    }
}
