//! Multi-head scaled dot-product attention.

use super::linear::Linear;
use crate::graph::{AttnMask, NodeId, Tape};
use crate::params::ParamStore;
use rotom_rng::rngs::StdRng;

/// Multi-head attention with separate Q/K/V/O projections.
///
/// Heads are realized by column-slicing the projected Q/K/V, computing
/// per-head attention, and concatenating — exact, with no reshape machinery.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
}

impl MultiHeadAttention {
    /// Register an attention block. `d_model` must be divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        d_model: usize,
        heads: usize,
    ) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must be divisible by heads");
        Self {
            wq: Linear::new(store, rng, &format!("{name}.wq"), d_model, d_model),
            wk: Linear::new(store, rng, &format!("{name}.wk"), d_model, d_model),
            wv: Linear::new(store, rng, &format!("{name}.wv"), d_model, d_model),
            wo: Linear::new(store, rng, &format!("{name}.wo"), d_model, d_model),
            heads,
            d_model,
        }
    }

    /// Attend queries (`Tq x d`) to keys/values (`Tk x d`).
    ///
    /// `mask`, if given, is an additive `Tq x Tk` mask (0 visible / -1e9
    /// hidden) shared across heads.
    pub fn forward(
        &self,
        tape: &mut Tape,
        q_in: NodeId,
        kv_in: NodeId,
        mask: Option<&AttnMask>,
        store: &ParamStore,
    ) -> NodeId {
        let dk = self.d_model / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let q = self.wq.forward(tape, q_in, store);
        let k = self.wk.forward(tape, kv_in, store);
        let v = self.wv.forward(tape, kv_in, store);
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qs = tape.slice_cols(q, h * dk, dk);
            let ks = tape.slice_cols(k, h * dk, dk);
            let vs = tape.slice_cols(v, h * dk, dk);
            let scores = tape.matmul_tb(qs, ks);
            let scores = tape.scale(scores, scale);
            let attn = tape.masked_softmax(scores, mask);
            head_outputs.push(tape.matmul(attn, vs));
        }
        let concat = tape.concat_cols(&head_outputs);
        self.wo.forward(tape, concat, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::transformer::causal_mask;
    use crate::tensor::Tensor;
    use rotom_rng::SeedableRng;

    #[test]
    fn self_attention_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::full(5, 8, 0.1));
        let y = attn.forward(&mut tape, x, x, None, &store);
        assert_eq!((tape.value(y).rows(), tape.value(y).cols()), (5, 8));
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With a causal mask, position 0's output must not change when later
        // positions change.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
        let run = |x: Tensor, store: &ParamStore| {
            let mut tape = Tape::new();
            let xin = tape.input(x);
            let mask = causal_mask(3, 3);
            let y = attn.forward(&mut tape, xin, xin, Some(&mask), store);
            tape.value(y).row_slice(0).to_vec()
        };
        let mut a = vec![0.1f32; 24];
        let base = run(Tensor::from_vec(a.clone(), 3, 8), &store);
        for v in &mut a[8..] {
            *v = 0.9;
        }
        let perturbed = run(Tensor::from_vec(a, 3, 8), &store);
        for (b, p) in base.iter().zip(&perturbed) {
            assert!((b - p).abs() < 1e-6, "future token leaked into position 0");
        }
    }
}
