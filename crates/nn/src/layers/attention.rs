//! Multi-head scaled dot-product attention.

use super::linear::Linear;
use crate::graph::{AttnMask, NodeId, Tape};
use crate::infer::InferScratch;
use crate::kernels::{self, Act};
use crate::params::ParamStore;
use crate::pool::RotomPool;
use rotom_rng::rngs::StdRng;

/// Multi-head attention with separate Q/K/V/O projections.
///
/// Heads are realized by column-slicing the projected Q/K/V, computing
/// per-head attention, and concatenating — exact, with no reshape machinery.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
}

impl MultiHeadAttention {
    /// Register an attention block. `d_model` must be divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        d_model: usize,
        heads: usize,
    ) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must be divisible by heads");
        Self {
            wq: Linear::new(store, rng, &format!("{name}.wq"), d_model, d_model),
            wk: Linear::new(store, rng, &format!("{name}.wk"), d_model, d_model),
            wv: Linear::new(store, rng, &format!("{name}.wv"), d_model, d_model),
            wo: Linear::new(store, rng, &format!("{name}.wo"), d_model, d_model),
            heads,
            d_model,
        }
    }

    /// Attend queries (`Tq x d`) to keys/values (`Tk x d`).
    ///
    /// `mask`, if given, is an additive `Tq x Tk` mask (0 visible / -1e9
    /// hidden) shared across heads.
    pub fn forward(
        &self,
        tape: &mut Tape,
        q_in: NodeId,
        kv_in: NodeId,
        mask: Option<&AttnMask>,
        store: &ParamStore,
    ) -> NodeId {
        let dk = self.d_model / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let q = self.wq.forward(tape, q_in, store);
        let k = self.wk.forward(tape, kv_in, store);
        let v = self.wv.forward(tape, kv_in, store);
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qs = tape.slice_cols(q, h * dk, dk);
            let ks = tape.slice_cols(k, h * dk, dk);
            let vs = tape.slice_cols(v, h * dk, dk);
            let scores = tape.matmul_tb(qs, ks);
            let scores = tape.scale(scores, scale);
            let attn = tape.masked_softmax(scores, mask);
            head_outputs.push(tape.matmul(attn, vs));
        }
        let concat = tape.concat_cols(&head_outputs);
        self.wo.forward(tape, concat, store)
    }

    /// Model width (for sizing inference workspaces).
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Forward-only attention of `tq × d` queries over `tk × d` keys/values
    /// into `out` (`tq × d`), bit-identical to [`forward`](Self::forward):
    /// identical projection GEMM dispatch, per-head slicing layouts, scalar
    /// reduction orders, and softmax formula. `mask`, if given, is the
    /// additive `tq × tk` mask data.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_forward(
        &self,
        q_in: &[f32],
        kv_in: &[f32],
        tq: usize,
        tk: usize,
        mask: Option<&[f32]>,
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) {
        let d = self.d_model;
        let mut k = scratch.take(tk * d);
        let mut v = scratch.take(tk * d);
        self.wk
            .infer_forward(kv_in, tk, Act::None, store, pool, &mut k);
        self.wv
            .infer_forward(kv_in, tk, Act::None, store, pool, &mut v);
        self.infer_forward_cached(q_in, tq, &k, &v, tk, mask, store, pool, scratch, out);
        scratch.put(k);
        scratch.put(v);
    }

    /// Project the K and V operands of `kv_in` (`tk × d`) into caller
    /// buffers (`tk × d` each) for reuse across calls whose key/value input
    /// is unchanged — e.g. cross-attention during autoregressive decoding,
    /// where the encoder memory is fixed for a whole generation.
    pub fn infer_project_kv(
        &self,
        kv_in: &[f32],
        tk: usize,
        store: &ParamStore,
        pool: &RotomPool,
        k_out: &mut [f32],
        v_out: &mut [f32],
    ) {
        self.wk
            .infer_forward(kv_in, tk, Act::None, store, pool, k_out);
        self.wv
            .infer_forward(kv_in, tk, Act::None, store, pool, v_out);
    }

    /// [`infer_forward`](Self::infer_forward) with the K/V projections
    /// precomputed by [`infer_project_kv`](Self::infer_project_kv). Values
    /// are unchanged — the projections are deterministic functions of the
    /// key/value input.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_forward_cached(
        &self,
        q_in: &[f32],
        tq: usize,
        k: &[f32],
        v: &[f32],
        tk: usize,
        mask: Option<&[f32]>,
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) {
        let d = self.d_model;
        let dk = d / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let mut q = scratch.take(tq * d);
        self.wq
            .infer_forward(q_in, tq, Act::None, store, pool, &mut q);
        let mut concat = scratch.take(tq * d);
        let mut qs = scratch.take(tq * dk);
        let mut ks = scratch.take(tk * dk);
        let mut vs = scratch.take(tk * dk);
        let mut scores = scratch.take(tq * tk);
        let mut attn = scratch.take(tq * tk);
        let mut head_out = scratch.take(tq * dk);
        for h in 0..self.heads {
            slice_cols(&q, tq, d, h * dk, dk, &mut qs);
            slice_cols(k, tk, d, h * dk, dk, &mut ks);
            slice_cols(v, tk, d, h * dk, dk, &mut vs);
            kernels::matmul_transpose_b_into(&qs, &ks, tq, dk, tk, pool, &mut scores);
            kernels::scale_fwd(&mut scores, scale);
            kernels::softmax_fwd(&scores, mask, tq, tk, &mut attn);
            kernels::matmul_into(&attn, &vs, tq, tk, dk, pool, &mut head_out);
            place_cols(&mut concat, tq, d, h * dk, dk, &head_out);
        }
        self.wo
            .infer_forward(&concat, tq, Act::None, store, pool, out);
        for buf in [q, concat, qs, ks, vs, scores, attn, head_out] {
            scratch.put(buf);
        }
    }

    /// Band replay of [`infer_forward`](Self::infer_forward): compute only
    /// the `band_len` query rows whose inputs are `q_in_band`, exactly as a
    /// `full_tq`-row call would have (see [`kernels::band_rows`]). The K/V
    /// projections still run over all `tk` rows (every query row attends to
    /// every key); `mask_band`, if given, holds the band's rows of the full
    /// mask.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_forward_band(
        &self,
        q_in_band: &[f32],
        kv_in: &[f32],
        full_tq: usize,
        band_len: usize,
        tk: usize,
        mask_band: Option<&[f32]>,
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) {
        let d = self.d_model;
        let mut k = scratch.take(tk * d);
        let mut v = scratch.take(tk * d);
        self.wk
            .infer_forward(kv_in, tk, Act::None, store, pool, &mut k);
        self.wv
            .infer_forward(kv_in, tk, Act::None, store, pool, &mut v);
        self.infer_forward_band_cached(
            q_in_band, full_tq, band_len, &k, &v, tk, mask_band, store, pool, scratch, out,
        );
        scratch.put(k);
        scratch.put(v);
    }

    /// [`infer_forward_band`](Self::infer_forward_band) with precomputed
    /// K/V projections.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_forward_band_cached(
        &self,
        q_in_band: &[f32],
        full_tq: usize,
        band_len: usize,
        k: &[f32],
        v: &[f32],
        tk: usize,
        mask_band: Option<&[f32]>,
        store: &ParamStore,
        _pool: &RotomPool,
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) {
        let d = self.d_model;
        let dk = d / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let mut q_band = scratch.take(band_len * d);
        self.wq
            .infer_forward_band(q_in_band, full_tq, band_len, Act::None, store, &mut q_band);
        let mut concat = scratch.take(band_len * d);
        let mut qs = scratch.take(band_len * dk);
        let mut ks = scratch.take(tk * dk);
        let mut vs = scratch.take(tk * dk);
        let mut scores = scratch.take(band_len * tk);
        let mut attn = scratch.take(band_len * tk);
        let mut head_out = scratch.take(band_len * dk);
        for h in 0..self.heads {
            slice_cols(&q_band, band_len, d, h * dk, dk, &mut qs);
            slice_cols(k, tk, d, h * dk, dk, &mut ks);
            slice_cols(v, tk, d, h * dk, dk, &mut vs);
            kernels::matmul_transpose_b_band_into(&qs, &ks, full_tq, band_len, dk, tk, &mut scores);
            kernels::scale_fwd(&mut scores, scale);
            kernels::softmax_fwd(&scores, mask_band, band_len, tk, &mut attn);
            kernels::matmul_band_into(&attn, &vs, None, full_tq, band_len, tk, dk, &mut head_out);
            place_cols(&mut concat, band_len, d, h * dk, dk, &head_out);
        }
        self.wo
            .infer_forward_band(&concat, full_tq, band_len, Act::None, store, out);
        for buf in [q_band, concat, qs, ks, vs, scores, attn, head_out] {
            scratch.put(buf);
        }
    }
}

/// Copy columns `c0..c0+width` of a `rows × src_cols` matrix into a dense
/// `rows × width` buffer — the value layout of the tape's `slice_cols`.
fn slice_cols(src: &[f32], rows: usize, src_cols: usize, c0: usize, width: usize, dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), rows * width);
    for i in 0..rows {
        dst[i * width..(i + 1) * width]
            .copy_from_slice(&src[i * src_cols + c0..i * src_cols + c0 + width]);
    }
}

/// Inverse of [`slice_cols`]: write a dense `rows × width` block into
/// columns `c0..c0+width` of a `rows × dst_cols` buffer — the value layout
/// of the tape's `concat_cols`.
fn place_cols(dst: &mut [f32], rows: usize, dst_cols: usize, c0: usize, width: usize, src: &[f32]) {
    debug_assert_eq!(src.len(), rows * width);
    for i in 0..rows {
        dst[i * dst_cols + c0..i * dst_cols + c0 + width]
            .copy_from_slice(&src[i * width..(i + 1) * width]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::transformer::causal_mask;
    use crate::tensor::Tensor;
    use rotom_rng::SeedableRng;

    #[test]
    fn self_attention_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::full(5, 8, 0.1));
        let y = attn.forward(&mut tape, x, x, None, &store);
        assert_eq!((tape.value(y).rows(), tape.value(y).cols()), (5, 8));
    }

    #[test]
    fn infer_forward_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let d = 8;
        let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", d, 2);
        let pool = RotomPool::new(1);
        for &(tq, tk, masked) in &[
            (1usize, 1usize, false),
            (5, 5, true),
            (3, 7, false),
            (9, 4, false),
        ] {
            let qx: Vec<f32> = (0..tq * d)
                .map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.07)
                .collect();
            let kx: Vec<f32> = (0..tk * d)
                .map(|i| ((i * 29 % 19) as f32 - 9.0) * 0.05)
                .collect();
            let mask = masked.then(|| causal_mask(tq, tk));
            let mut tape = Tape::new();
            let qn = tape.input(Tensor::from_vec(qx.clone(), tq, d));
            let kn = tape.input(Tensor::from_vec(kx.clone(), tk, d));
            let y = attn.forward(&mut tape, qn, kn, mask.as_ref(), &store);
            let expect = tape.value(y).data().to_vec();

            let mut scratch = InferScratch::new();
            let mut got = vec![0.0f32; tq * d];
            attn.infer_forward(
                &qx,
                &kx,
                tq,
                tk,
                mask.as_ref().map(|m| m.data()),
                &store,
                &pool,
                &mut scratch,
                &mut got,
            );
            assert_eq!(expect, got, "tq={tq} tk={tk} masked={masked}");

            // Band replay of the last rows matches the same rows of the full call.
            let (start, len) = kernels::band_rows(tq, tq - 1);
            let mut band_out = vec![0.0f32; len * d];
            attn.infer_forward_band(
                &qx[start * d..],
                &kx,
                tq,
                len,
                tk,
                mask.as_ref().map(|m| &m.data()[start * tk..]),
                &store,
                &pool,
                &mut scratch,
                &mut band_out,
            );
            assert_eq!(&expect[start * d..], &band_out[..], "band tq={tq} tk={tk}");

            // Cached K/V projections change nothing.
            let mut k = vec![0.0f32; tk * d];
            let mut v = vec![0.0f32; tk * d];
            attn.infer_project_kv(&kx, tk, &store, &pool, &mut k, &mut v);
            let mut got_cached = vec![0.0f32; tq * d];
            attn.infer_forward_cached(
                &qx,
                tq,
                &k,
                &v,
                tk,
                mask.as_ref().map(|m| m.data()),
                &store,
                &pool,
                &mut scratch,
                &mut got_cached,
            );
            assert_eq!(expect, got_cached, "cached tq={tq} tk={tk}");
        }
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With a causal mask, position 0's output must not change when later
        // positions change.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
        let run = |x: Tensor, store: &ParamStore| {
            let mut tape = Tape::new();
            let xin = tape.input(x);
            let mask = causal_mask(3, 3);
            let y = attn.forward(&mut tape, xin, xin, Some(&mask), store);
            tape.value(y).row_slice(0).to_vec()
        };
        let mut a = vec![0.1f32; 24];
        let base = run(Tensor::from_vec(a.clone(), 3, 8), &store);
        for v in &mut a[8..] {
            *v = 0.9;
        }
        let perturbed = run(Tensor::from_vec(a, 3, 8), &store);
        for (b, p) in base.iter().zip(&perturbed) {
            assert!((b - p).abs() < 1e-6, "future token leaked into position 0");
        }
    }
}
