//! Neural network layers built on the autodiff [`Tape`](crate::graph::Tape).
//!
//! Every layer owns [`ParamId`](crate::params::ParamId)s registered in a
//! shared [`ParamStore`](crate::params::ParamStore) and exposes a `forward`
//! that appends nodes to a caller-provided tape. Layers are stateless between
//! calls; all trainable state lives in the store.

mod attention;
mod embedding;
mod linear;
mod norm;
mod rnn;
mod transformer;

pub use attention::MultiHeadAttention;
pub use embedding::Embedding;
pub use linear::Linear;
pub use norm::LayerNorm;
pub use rnn::Gru;
pub use transformer::{
    causal_mask, DecoderKvCache, DecoderLayer, EncoderLayer, FeedForward, TransformerConfig,
    TransformerDecoder, TransformerEncoder,
};

use rotom_rng::rngs::StdRng;

/// Per-forward context: parameter store plus (optionally) a dropout source.
///
/// When `rng` is `None` the forward pass is deterministic (evaluation mode);
/// dropout layers become identity.
pub struct FwdCtx<'a> {
    /// Parameter store the layers read weights from.
    pub store: &'a crate::params::ParamStore,
    /// Dropout probability applied inside layers that support it.
    pub dropout: f32,
    /// RNG for dropout masks; `None` disables dropout (eval mode).
    pub rng: Option<&'a mut StdRng>,
}

impl<'a> FwdCtx<'a> {
    /// Evaluation-mode context (no dropout).
    pub fn eval(store: &'a crate::params::ParamStore) -> Self {
        Self {
            store,
            dropout: 0.0,
            rng: None,
        }
    }

    /// Training-mode context with dropout probability `p`.
    pub fn train(store: &'a crate::params::ParamStore, p: f32, rng: &'a mut StdRng) -> Self {
        Self {
            store,
            dropout: p,
            rng: Some(rng),
        }
    }

    /// Draw a dropout mask of `n` Bernoulli(1-p) bits, or `None` in eval mode
    /// or when `p == 0`.
    pub fn dropout_mask(&mut self, n: usize) -> Option<Vec<bool>> {
        if self.dropout <= 0.0 {
            return None;
        }
        let p = self.dropout;
        self.rng.as_deref_mut().map(|rng| {
            (0..n)
                .map(|_| rotom_rng::RngExt::random_bool(rng, (1.0 - p) as f64))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use rotom_rng::SeedableRng;

    #[test]
    fn eval_ctx_never_produces_masks() {
        let store = ParamStore::new();
        let mut ctx = FwdCtx::eval(&store);
        assert!(ctx.dropout_mask(16).is_none());
    }

    #[test]
    fn zero_dropout_train_ctx_skips_masks() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = FwdCtx::train(&store, 0.0, &mut rng);
        assert!(ctx.dropout_mask(16).is_none());
    }

    #[test]
    fn train_ctx_mask_has_expected_density() {
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = FwdCtx::train(&store, 0.25, &mut rng);
        let mask = ctx.dropout_mask(4000).unwrap();
        let kept = mask.iter().filter(|&&b| b).count();
        // Keep probability 0.75: expect ~3000 ± noise.
        assert!((2800..3200).contains(&kept), "kept {kept}");
    }
}
