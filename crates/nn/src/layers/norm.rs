//! Layer normalization.

use crate::graph::{NodeId, Tape};
use crate::init::Initializer;
use crate::params::{ParamId, ParamStore};
use rotom_rng::rngs::StdRng;

/// Row-wise layer normalization with learned scale and shift.
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Register a layer norm over `dim`-wide rows.
    pub fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, dim: usize) -> Self {
        let gamma = store.alloc(format!("{name}.gamma"), 1, dim, Initializer::Ones, rng);
        let beta = store.alloc(format!("{name}.beta"), 1, dim, Initializer::Zeros, rng);
        Self {
            gamma,
            beta,
            eps: 1e-5,
        }
    }

    /// Normalize each row of `x`.
    pub fn forward(&self, tape: &mut Tape, x: NodeId, store: &ParamStore) -> NodeId {
        let g = tape.param(self.gamma, store);
        let b = tape.param(self.beta, store);
        tape.layer_norm(x, g, b, self.eps)
    }

    /// Forward-only row-wise normalization of a `rows × dim` buffer into
    /// `out`, bit-identical to the tape's `layer_norm` op. Layer norm is
    /// per-row, so this also serves row bands directly.
    pub fn infer_forward(&self, x: &[f32], rows: usize, store: &ParamStore, out: &mut [f32]) {
        let g = store.value(self.gamma);
        let b = store.value(self.beta);
        crate::kernels::layernorm_fwd(x, g.data(), b.data(), self.eps, rows, g.cols(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rotom_rng::SeedableRng;

    #[test]
    fn normalized_rows_have_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, &mut rng, "ln", 4);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0],
            2,
            4,
        ));
        let y = ln.forward(&mut tape, x, &store);
        for r in 0..2 {
            let row = tape.value(y).row_slice(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }
}
