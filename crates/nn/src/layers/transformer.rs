//! Transformer encoder / decoder stacks.
//!
//! These are the building blocks of both the target classifier ("TinyLm", the
//! stand-in for RoBERTa/DistilBERT) and the InvDA seq2seq model (the stand-in
//! for T5). Pre-norm residual blocks are used for training stability at small
//! scale.

use super::attention::MultiHeadAttention;
use super::embedding::Embedding;
use super::linear::Linear;
use super::norm::LayerNorm;
use super::FwdCtx;
use crate::graph::{AttnMask, NodeId, Tape};
use crate::infer::InferScratch;
use crate::kernels::{self, Act};
use crate::params::ParamStore;
use crate::pool::RotomPool;
use crate::tensor::Tensor;
use rotom_rng::rngs::StdRng;

/// Hyper-parameters shared by encoder and decoder stacks.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerConfig {
    /// Vocabulary size (token embedding rows).
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Number of layers.
    pub layers: usize,
    /// Maximum sequence length (positional embedding rows).
    pub max_len: usize,
    /// Dropout probability used in training mode.
    pub dropout: f32,
}

impl TransformerConfig {
    /// A small configuration suitable for unit tests.
    pub fn tiny(vocab: usize) -> Self {
        Self {
            vocab,
            d_model: 32,
            heads: 2,
            d_ff: 64,
            layers: 2,
            max_len: 64,
            dropout: 0.1,
        }
    }
}

/// Additive causal mask of shape `tq x tk`: position `i` may attend to
/// keys `0..=i + (tk - tq)`.
pub fn causal_mask(tq: usize, tk: usize) -> AttnMask {
    let offset = tk - tq;
    let mut m = Tensor::zeros(tq, tk);
    for i in 0..tq {
        for j in (i + offset + 1)..tk {
            *m.at_mut(i, j) = -1e9;
        }
    }
    m
}

/// Position-wise feed-forward block: `Linear -> GELU -> Linear`.
pub struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    /// Register a `d_model -> d_ff -> d_model` block.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        d_model: usize,
        d_ff: usize,
    ) -> Self {
        Self {
            l1: Linear::new(store, rng, &format!("{name}.ff1"), d_model, d_ff),
            l2: Linear::new(store, rng, &format!("{name}.ff2"), d_ff, d_model),
        }
    }

    /// Apply the block.
    pub fn forward(&self, tape: &mut Tape, x: NodeId, store: &ParamStore) -> NodeId {
        let h = self.l1.forward(tape, x, store);
        let h = tape.gelu(h);
        self.l2.forward(tape, h, store)
    }

    /// Forward-only application over a `rows × d_model` buffer into `out`,
    /// bit-identical to [`forward`](Self::forward) (the GELU is fused into
    /// the first GEMM's epilogue, which applies the same per-element ops).
    pub fn infer_forward(
        &self,
        x: &[f32],
        rows: usize,
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) {
        let mut h = scratch.take(rows * self.l1.out_dim());
        self.l1
            .infer_forward(x, rows, Act::Gelu, store, pool, &mut h);
        self.l2.infer_forward(&h, rows, Act::None, store, pool, out);
        scratch.put(h);
    }

    /// Band replay of [`infer_forward`](Self::infer_forward): only the
    /// `band_len` rows starting at a [`kernels::band_rows`] boundary of a
    /// `full_rows`-row input are computed, bit-identically.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_forward_band(
        &self,
        x_band: &[f32],
        full_rows: usize,
        band_len: usize,
        store: &ParamStore,
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) {
        let mut h = scratch.take(band_len * self.l1.out_dim());
        self.l1
            .infer_forward_band(x_band, full_rows, band_len, Act::Gelu, store, &mut h);
        self.l2
            .infer_forward_band(&h, full_rows, band_len, Act::None, store, out);
        scratch.put(h);
    }
}

/// Pre-norm Transformer encoder layer.
pub struct EncoderLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff: FeedForward,
    ln2: LayerNorm,
}

impl EncoderLayer {
    /// Register one encoder layer.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        cfg: &TransformerConfig,
    ) -> Self {
        Self {
            attn: MultiHeadAttention::new(
                store,
                rng,
                &format!("{name}.attn"),
                cfg.d_model,
                cfg.heads,
            ),
            ln1: LayerNorm::new(store, rng, &format!("{name}.ln1"), cfg.d_model),
            ff: FeedForward::new(store, rng, &format!("{name}.ff"), cfg.d_model, cfg.d_ff),
            ln2: LayerNorm::new(store, rng, &format!("{name}.ln2"), cfg.d_model),
        }
    }

    /// Apply the layer to a `T x d` node.
    pub fn forward(&self, tape: &mut Tape, x: NodeId, ctx: &mut FwdCtx<'_>) -> NodeId {
        let n1 = self.ln1.forward(tape, x, ctx.store);
        let a = self.attn.forward(tape, n1, n1, None, ctx.store);
        let a = apply_dropout(tape, a, ctx);
        let x = tape.add(x, a);
        let n2 = self.ln2.forward(tape, x, ctx.store);
        let f = self.ff.forward(tape, n2, ctx.store);
        let f = apply_dropout(tape, f, ctx);
        tape.add(x, f)
    }

    /// Forward-only application, updating the `t × d` buffer `x` in place.
    /// Bit-identical to [`forward`](Self::forward) in eval mode (dropout at
    /// probability 0 is the identity and consumes no randomness).
    pub fn infer_forward(
        &self,
        x: &mut [f32],
        t: usize,
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
    ) {
        let d = self.attn.d_model();
        let mut n = scratch.take(t * d);
        let mut a = scratch.take(t * d);
        self.ln1.infer_forward(x, t, store, &mut n);
        self.attn
            .infer_forward(&n, &n, t, t, None, store, pool, scratch, &mut a);
        kernels::add_assign_fwd(x, &a);
        self.ln2.infer_forward(x, t, store, &mut n);
        self.ff.infer_forward(&n, t, store, pool, scratch, &mut a);
        kernels::add_assign_fwd(x, &a);
        scratch.put(n);
        scratch.put(a);
    }

    /// Band replay: given the full `t × d` input `x`, compute only the
    /// `band_len` output rows starting at `band_start` (a
    /// [`kernels::band_rows`] boundary) into `out_band`. The first layer
    /// norm still runs over all rows because every query row attends to
    /// every key; everything after the attention is per-row.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_forward_band_tail(
        &self,
        x: &[f32],
        t: usize,
        band_start: usize,
        band_len: usize,
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
        out_band: &mut [f32],
    ) {
        let d = self.attn.d_model();
        let band = band_start * d..(band_start + band_len) * d;
        let mut n1 = scratch.take(t * d);
        let mut a = scratch.take(band_len * d);
        let mut x2 = scratch.take(band_len * d);
        let mut n2 = scratch.take(band_len * d);
        self.ln1.infer_forward(x, t, store, &mut n1);
        self.attn.infer_forward_band(
            &n1[band.clone()],
            &n1,
            t,
            band_len,
            t,
            None,
            store,
            pool,
            scratch,
            &mut a,
        );
        kernels::add_fwd(&x[band], &a, &mut x2);
        self.ln2.infer_forward(&x2, band_len, store, &mut n2);
        self.ff
            .infer_forward_band(&n2, t, band_len, store, scratch, &mut a);
        kernels::add_fwd(&x2, &a, out_band);
        scratch.put(n1);
        scratch.put(a);
        scratch.put(x2);
        scratch.put(n2);
    }
}

/// Pre-norm Transformer decoder layer with cross-attention.
pub struct DecoderLayer {
    self_attn: MultiHeadAttention,
    ln1: LayerNorm,
    cross_attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff: FeedForward,
    ln3: LayerNorm,
}

impl DecoderLayer {
    /// Register one decoder layer.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        cfg: &TransformerConfig,
    ) -> Self {
        Self {
            self_attn: MultiHeadAttention::new(
                store,
                rng,
                &format!("{name}.self"),
                cfg.d_model,
                cfg.heads,
            ),
            ln1: LayerNorm::new(store, rng, &format!("{name}.ln1"), cfg.d_model),
            cross_attn: MultiHeadAttention::new(
                store,
                rng,
                &format!("{name}.cross"),
                cfg.d_model,
                cfg.heads,
            ),
            ln2: LayerNorm::new(store, rng, &format!("{name}.ln2"), cfg.d_model),
            ff: FeedForward::new(store, rng, &format!("{name}.ff"), cfg.d_model, cfg.d_ff),
            ln3: LayerNorm::new(store, rng, &format!("{name}.ln3"), cfg.d_model),
        }
    }

    /// Apply the layer. `x` is the `Tq x d` decoder state, `memory` the
    /// encoder output, `self_mask` the causal mask.
    pub fn forward(
        &self,
        tape: &mut Tape,
        x: NodeId,
        memory: NodeId,
        self_mask: &AttnMask,
        ctx: &mut FwdCtx<'_>,
    ) -> NodeId {
        let n1 = self.ln1.forward(tape, x, ctx.store);
        let a = self
            .self_attn
            .forward(tape, n1, n1, Some(self_mask), ctx.store);
        let a = apply_dropout(tape, a, ctx);
        let x = tape.add(x, a);
        let n2 = self.ln2.forward(tape, x, ctx.store);
        let c = self.cross_attn.forward(tape, n2, memory, None, ctx.store);
        let c = apply_dropout(tape, c, ctx);
        let x = tape.add(x, c);
        let n3 = self.ln3.forward(tape, x, ctx.store);
        let f = self.ff.forward(tape, n3, ctx.store);
        let f = apply_dropout(tape, f, ctx);
        tape.add(x, f)
    }

    /// Forward-only application, updating the `t × d` buffer `x` in place.
    /// Cross-attention keys/values come precomputed (`cross_k`/`cross_v`,
    /// `mem_rows × d` each — see
    /// [`MultiHeadAttention::infer_project_kv`]); `self_mask` is the full
    /// `t × t` causal mask data. Bit-identical to
    /// [`forward`](Self::forward) in eval mode.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_forward(
        &self,
        x: &mut [f32],
        t: usize,
        cross_k: &[f32],
        cross_v: &[f32],
        mem_rows: usize,
        self_mask: &[f32],
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
    ) {
        let d = self.self_attn.d_model();
        let mut n = scratch.take(t * d);
        let mut a = scratch.take(t * d);
        self.ln1.infer_forward(x, t, store, &mut n);
        self.self_attn
            .infer_forward(&n, &n, t, t, Some(self_mask), store, pool, scratch, &mut a);
        kernels::add_assign_fwd(x, &a);
        self.ln2.infer_forward(x, t, store, &mut n);
        self.cross_attn.infer_forward_cached(
            &n, t, cross_k, cross_v, mem_rows, None, store, pool, scratch, &mut a,
        );
        kernels::add_assign_fwd(x, &a);
        self.ln3.infer_forward(x, t, store, &mut n);
        self.ff.infer_forward(&n, t, store, pool, scratch, &mut a);
        kernels::add_assign_fwd(x, &a);
        scratch.put(n);
        scratch.put(a);
    }

    /// Band replay: compute only the `band_len` output rows starting at
    /// `band_start` from the full `t × d` input `x`. `self_mask_band` holds
    /// the band's rows of the full causal mask (`band_len × t`).
    #[allow(clippy::too_many_arguments)]
    pub fn infer_forward_band_tail(
        &self,
        x: &[f32],
        t: usize,
        band_start: usize,
        band_len: usize,
        cross_k: &[f32],
        cross_v: &[f32],
        mem_rows: usize,
        self_mask_band: &[f32],
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
        out_band: &mut [f32],
    ) {
        let d = self.self_attn.d_model();
        let band = band_start * d..(band_start + band_len) * d;
        let mut n1 = scratch.take(t * d);
        let mut a = scratch.take(band_len * d);
        let mut x2 = scratch.take(band_len * d);
        let mut nb = scratch.take(band_len * d);
        let mut x3 = scratch.take(band_len * d);
        self.ln1.infer_forward(x, t, store, &mut n1);
        self.self_attn.infer_forward_band(
            &n1[band.clone()],
            &n1,
            t,
            band_len,
            t,
            Some(self_mask_band),
            store,
            pool,
            scratch,
            &mut a,
        );
        kernels::add_fwd(&x[band], &a, &mut x2);
        self.ln2.infer_forward(&x2, band_len, store, &mut nb);
        self.cross_attn.infer_forward_band_cached(
            &nb, t, band_len, cross_k, cross_v, mem_rows, None, store, pool, scratch, &mut a,
        );
        kernels::add_fwd(&x2, &a, &mut x3);
        self.ln3.infer_forward(&x3, band_len, store, &mut nb);
        self.ff
            .infer_forward_band(&nb, t, band_len, store, scratch, &mut a);
        kernels::add_fwd(&x3, &a, out_band);
        scratch.put(n1);
        scratch.put(a);
        scratch.put(x2);
        scratch.put(nb);
        scratch.put(x3);
    }
}

fn apply_dropout(tape: &mut Tape, x: NodeId, ctx: &mut FwdCtx<'_>) -> NodeId {
    let n = tape.value(x).len();
    let mask = ctx.dropout_mask(n);
    tape.dropout(x, ctx.dropout, mask)
}

/// Token + positional embedding followed by a stack of encoder layers and a
/// final layer norm.
pub struct TransformerEncoder {
    tok: Embedding,
    pos: Embedding,
    layers: Vec<EncoderLayer>,
    ln_f: LayerNorm,
    cfg: TransformerConfig,
}

impl TransformerEncoder {
    /// Register the full encoder stack.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        cfg: TransformerConfig,
    ) -> Self {
        let tok = Embedding::new(store, rng, &format!("{name}.tok"), cfg.vocab, cfg.d_model);
        let pos = Embedding::new(store, rng, &format!("{name}.pos"), cfg.max_len, cfg.d_model);
        let layers = (0..cfg.layers)
            .map(|i| EncoderLayer::new(store, rng, &format!("{name}.enc{i}"), &cfg))
            .collect();
        let ln_f = LayerNorm::new(store, rng, &format!("{name}.lnf"), cfg.d_model);
        Self {
            tok,
            pos,
            layers,
            ln_f,
            cfg,
        }
    }

    /// Configuration used at construction.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Token-embedding parameter id (for weight tying).
    pub fn token_table(&self) -> crate::params::ParamId {
        self.tok.table()
    }

    /// Encode `ids` (truncated to `max_len`) into a `T x d` node.
    pub fn forward(&self, tape: &mut Tape, ids: &[usize], ctx: &mut FwdCtx<'_>) -> NodeId {
        self.forward_with(tape, ids, &[], ctx)
    }

    /// Encode with additional input-feature embeddings (BERT-style segment
    /// ids, duplicate-token flags, …): each `(table, feature_ids)` pair is
    /// looked up and added to the token + position embeddings. Feature id
    /// slices must be at least as long as `ids`.
    pub fn forward_with(
        &self,
        tape: &mut Tape,
        ids: &[usize],
        extras: &[(&Embedding, &[usize])],
        ctx: &mut FwdCtx<'_>,
    ) -> NodeId {
        let t = ids.len().min(self.cfg.max_len);
        let ids = &ids[..t];
        let positions: Vec<usize> = (0..t).collect();
        let te = self.tok.forward(tape, ctx.store, ids);
        let pe = self.pos.forward(tape, ctx.store, &positions);
        let mut x = tape.add(te, pe);
        for (table, feats) in extras {
            assert!(feats.len() >= t, "feature ids shorter than input");
            let fe = table.forward(tape, ctx.store, &feats[..t]);
            x = tape.add(x, fe);
        }
        x = apply_dropout(tape, x, ctx);
        for layer in &self.layers {
            x = layer.forward(tape, x, ctx);
        }
        self.ln_f.forward(tape, x, ctx.store)
    }

    /// Encode and return the first-token ([CLS]) representation as `1 x d`.
    pub fn encode_cls(&self, tape: &mut Tape, ids: &[usize], ctx: &mut FwdCtx<'_>) -> NodeId {
        let h = self.forward(tape, ids, ctx);
        tape.slice_rows(h, 0, 1)
    }

    /// [`encode_cls`](Self::encode_cls) with extra input features.
    pub fn encode_cls_with(
        &self,
        tape: &mut Tape,
        ids: &[usize],
        extras: &[(&Embedding, &[usize])],
        ctx: &mut FwdCtx<'_>,
    ) -> NodeId {
        let h = self.forward_with(tape, ids, extras, ctx);
        tape.slice_rows(h, 0, 1)
    }

    /// Sum token + positional (+ extra feature) embeddings into a fresh
    /// `t × d` buffer, exactly as the tape forward does in eval mode.
    fn infer_embed(
        &self,
        ids: &[usize],
        extras: &[(&Embedding, &[usize])],
        store: &ParamStore,
        scratch: &mut InferScratch,
    ) -> (Vec<f32>, usize) {
        let d = self.cfg.d_model;
        let t = ids.len().min(self.cfg.max_len);
        let ids = &ids[..t];
        let mut x = scratch.take(t * d);
        self.tok.infer_gather(store, ids, &mut x);
        // Positions are 0..t, so the gather is the table's leading rows.
        kernels::add_assign_fwd(&mut x, &store.value(self.pos.table()).data()[..t * d]);
        let mut fe = scratch.take(t * d);
        for (table, feats) in extras {
            assert!(feats.len() >= t, "feature ids shorter than input");
            table.infer_gather(store, &feats[..t], &mut fe);
            kernels::add_assign_fwd(&mut x, &fe);
        }
        scratch.put(fe);
        (x, t)
    }

    /// Forward-only, tape-free encoding of `ids` (truncated to `max_len`):
    /// returns the `t × d` hidden states and `t`. Bit-identical to
    /// [`forward_with`](Self::forward_with) under [`FwdCtx::eval`]. The
    /// returned buffer comes from `scratch`; hand it back with
    /// [`InferScratch::put`] when done.
    pub fn infer_forward_with(
        &self,
        ids: &[usize],
        extras: &[(&Embedding, &[usize])],
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
    ) -> (Vec<f32>, usize) {
        let (mut x, t) = self.infer_embed(ids, extras, store, scratch);
        for layer in &self.layers {
            layer.infer_forward(&mut x, t, store, pool, scratch);
        }
        let mut out = scratch.take(t * self.cfg.d_model);
        self.ln_f.infer_forward(&x, t, store, &mut out);
        scratch.put(x);
        (out, t)
    }

    /// Forward-only [CLS] encoding into `cls_out` (`d_model` floats),
    /// bit-identical to [`encode_cls_with`](Self::encode_cls_with) under
    /// [`FwdCtx::eval`]. Only the final layer is band-restricted to the
    /// leading rows (earlier layers feed every position into the next
    /// attention, so they must run in full).
    pub fn infer_encode_cls_with(
        &self,
        ids: &[usize],
        extras: &[(&Embedding, &[usize])],
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
        cls_out: &mut [f32],
    ) {
        let d = self.cfg.d_model;
        let (mut x, t) = self.infer_embed(ids, extras, store, scratch);
        let (band_start, band_len) = kernels::band_rows(t, 0);
        debug_assert_eq!(band_start, 0);
        let mut band = scratch.take(band_len * d);
        if let Some((last, init)) = self.layers.split_last() {
            for layer in init {
                layer.infer_forward(&mut x, t, store, pool, scratch);
            }
            last.infer_forward_band_tail(&x, t, 0, band_len, store, pool, scratch, &mut band);
        } else {
            band.copy_from_slice(&x[..band_len * d]);
        }
        let mut normed = scratch.take(band_len * d);
        self.ln_f.infer_forward(&band, band_len, store, &mut normed);
        cls_out.copy_from_slice(&normed[..d]);
        scratch.put(x);
        scratch.put(band);
        scratch.put(normed);
    }
}

/// Decoder stack with output projection tied to its own token embedding.
pub struct TransformerDecoder {
    tok: Embedding,
    pos: Embedding,
    layers: Vec<DecoderLayer>,
    ln_f: LayerNorm,
    proj: Linear,
    cfg: TransformerConfig,
}

impl TransformerDecoder {
    /// Register the full decoder stack.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        cfg: TransformerConfig,
    ) -> Self {
        let tok = Embedding::new(store, rng, &format!("{name}.tok"), cfg.vocab, cfg.d_model);
        let pos = Embedding::new(store, rng, &format!("{name}.pos"), cfg.max_len, cfg.d_model);
        let layers = (0..cfg.layers)
            .map(|i| DecoderLayer::new(store, rng, &format!("{name}.dec{i}"), &cfg))
            .collect();
        let ln_f = LayerNorm::new(store, rng, &format!("{name}.lnf"), cfg.d_model);
        let proj = Linear::new(store, rng, &format!("{name}.proj"), cfg.d_model, cfg.vocab);
        Self {
            tok,
            pos,
            layers,
            ln_f,
            proj,
            cfg,
        }
    }

    /// Configuration used at construction.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Decode `ids` against encoder `memory`, returning `T x vocab` logits
    /// (next-token prediction per position, causal).
    pub fn forward(
        &self,
        tape: &mut Tape,
        ids: &[usize],
        memory: NodeId,
        ctx: &mut FwdCtx<'_>,
    ) -> NodeId {
        let t = ids.len().min(self.cfg.max_len);
        let ids = &ids[..t];
        let positions: Vec<usize> = (0..t).collect();
        let te = self.tok.forward(tape, ctx.store, ids);
        let pe = self.pos.forward(tape, ctx.store, &positions);
        let mut x = tape.add(te, pe);
        x = apply_dropout(tape, x, ctx);
        let mask = causal_mask(t, t);
        for layer in &self.layers {
            x = layer.forward(tape, x, memory, &mask, ctx);
        }
        let x = self.ln_f.forward(tape, x, ctx.store);
        self.proj.forward(tape, x, ctx.store)
    }

    /// Precompute each layer's cross-attention K/V projections of `memory`
    /// (`mem_rows × d`). During autoregressive decoding the encoder memory
    /// is fixed, so these projections are identical at every step — caching
    /// them is a pure reuse of bit-identical values.
    pub fn infer_prepare(
        &self,
        memory: &[f32],
        mem_rows: usize,
        store: &ParamStore,
        pool: &RotomPool,
    ) -> DecoderKvCache {
        let d = self.cfg.d_model;
        let per_layer = self
            .layers
            .iter()
            .map(|layer| {
                let mut k = vec![0.0f32; mem_rows * d];
                let mut v = vec![0.0f32; mem_rows * d];
                layer
                    .cross_attn
                    .infer_project_kv(memory, mem_rows, store, pool, &mut k, &mut v);
                (k, v)
            })
            .collect();
        DecoderKvCache {
            per_layer,
            mem_rows,
        }
    }

    /// Forward-only decode of the prefix `ids` returning only the LAST
    /// position's logits (`vocab` floats) — the row every sampling and beam
    /// step consumes. Bit-identical to that row of
    /// [`forward`](Self::forward) under [`FwdCtx::eval`]: all but the final
    /// layer run in full (their outputs feed every later position), while
    /// the final layer, final norm, and the vocab projection — by far the
    /// widest GEMM — replay only the last row's band.
    pub fn infer_last_logits(
        &self,
        ids: &[usize],
        cache: &DecoderKvCache,
        store: &ParamStore,
        pool: &RotomPool,
        scratch: &mut InferScratch,
        logits_out: &mut [f32],
    ) {
        let d = self.cfg.d_model;
        let t = ids.len().min(self.cfg.max_len);
        let ids = &ids[..t];
        let mut x = scratch.take(t * d);
        self.tok.infer_gather(store, ids, &mut x);
        kernels::add_assign_fwd(&mut x, &store.value(self.pos.table()).data()[..t * d]);
        let mut mask = scratch.take(t * t);
        mask.fill(0.0);
        for i in 0..t {
            for j in (i + 1)..t {
                mask[i * t + j] = -1e9;
            }
        }
        let (band_start, band_len) = kernels::band_rows(t, t - 1);
        let mut band = scratch.take(band_len * d);
        if let Some((last, init)) = self.layers.split_last() {
            for (li, layer) in init.iter().enumerate() {
                let (ck, cv) = &cache.per_layer[li];
                layer.infer_forward(
                    &mut x,
                    t,
                    ck,
                    cv,
                    cache.mem_rows,
                    &mask,
                    store,
                    pool,
                    scratch,
                );
            }
            let li = self.layers.len() - 1;
            let (ck, cv) = &cache.per_layer[li];
            last.infer_forward_band_tail(
                &x,
                t,
                band_start,
                band_len,
                ck,
                cv,
                cache.mem_rows,
                &mask[band_start * t..(band_start + band_len) * t],
                store,
                pool,
                scratch,
                &mut band,
            );
        } else {
            band.copy_from_slice(&x[band_start * d..(band_start + band_len) * d]);
        }
        let mut normed = scratch.take(band_len * d);
        self.ln_f.infer_forward(&band, band_len, store, &mut normed);
        let mut proj_band = scratch.take(band_len * self.cfg.vocab);
        self.proj
            .infer_forward_band(&normed, t, band_len, Act::None, store, &mut proj_band);
        let last_row = t - 1 - band_start;
        logits_out.copy_from_slice(
            &proj_band[last_row * self.cfg.vocab..(last_row + 1) * self.cfg.vocab],
        );
        scratch.put(x);
        scratch.put(mask);
        scratch.put(band);
        scratch.put(normed);
        scratch.put(proj_band);
    }
}

/// Per-layer cross-attention K/V projections of a fixed encoder memory,
/// built by [`TransformerDecoder::infer_prepare`] and reused across the
/// steps of one generation.
pub struct DecoderKvCache {
    per_layer: Vec<(Vec<f32>, Vec<f32>)>,
    mem_rows: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    #[test]
    fn encoder_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig::tiny(50);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg);
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(&store);
        let h = enc.forward(&mut tape, &[1, 2, 3, 4], &mut ctx);
        assert_eq!((tape.value(h).rows(), tape.value(h).cols()), (4, 32));
        let cls = enc.encode_cls(&mut tape, &[1, 2, 3, 4], &mut ctx);
        assert_eq!((tape.value(cls).rows(), tape.value(cls).cols()), (1, 32));
    }

    #[test]
    fn encoder_truncates_to_max_len() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let mut cfg = TransformerConfig::tiny(50);
        cfg.max_len = 8;
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg);
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(&store);
        let ids: Vec<usize> = (0..20).map(|i| i % 50).collect();
        let h = enc.forward(&mut tape, &ids, &mut ctx);
        assert_eq!(tape.value(h).rows(), 8);
    }

    #[test]
    fn decoder_logit_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig::tiny(50);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg.clone());
        let dec = TransformerDecoder::new(&mut store, &mut rng, "dec", cfg);
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(&store);
        let mem = enc.forward(&mut tape, &[5, 6, 7], &mut ctx);
        let logits = dec.forward(&mut tape, &[1, 2], mem, &mut ctx);
        assert_eq!(
            (tape.value(logits).rows(), tape.value(logits).cols()),
            (2, 50)
        );
    }

    #[test]
    fn encoder_infer_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig::tiny(50);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg);
        let mut scratch = InferScratch::new();
        for threads in [1usize, 8] {
            let pool = RotomPool::new(threads);
            for ids in [
                vec![1usize],
                vec![4, 9, 2],
                (0..23).map(|i| i % 50).collect(),
            ] {
                let mut tape = Tape::new();
                let mut ctx = FwdCtx::eval(&store);
                let h = enc.forward(&mut tape, &ids, &mut ctx);
                let expect = tape.value(h).data().to_vec();
                let cls = enc.encode_cls(&mut tape, &ids, &mut ctx);
                let expect_cls = tape.value(cls).data().to_vec();

                let (got, t) = enc.infer_forward_with(&ids, &[], &store, &pool, &mut scratch);
                assert_eq!(t, ids.len());
                assert_eq!(expect, got, "full ids={ids:?} threads={threads}");
                scratch.put(got);

                let mut got_cls = vec![0.0f32; 32];
                enc.infer_encode_cls_with(&ids, &[], &store, &pool, &mut scratch, &mut got_cls);
                assert_eq!(expect_cls, got_cls, "cls ids={ids:?} threads={threads}");
            }
        }
    }

    #[test]
    fn decoder_infer_last_logits_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig::tiny(50);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg.clone());
        let dec = TransformerDecoder::new(&mut store, &mut rng, "dec", cfg);
        let src: Vec<usize> = vec![5, 6, 7, 8, 9];
        let mut scratch = InferScratch::new();
        for threads in [1usize, 8] {
            let pool = RotomPool::new(threads);
            let (memory, mem_rows) = enc.infer_forward_with(&src, &[], &store, &pool, &mut scratch);
            let cache = dec.infer_prepare(&memory, mem_rows, &store, &pool);
            for prefix_len in [1usize, 2, 5, 9] {
                let prefix: Vec<usize> = (0..prefix_len).map(|i| (i * 3 + 1) % 50).collect();
                let mut tape = Tape::new();
                let mut ctx = FwdCtx::eval(&store);
                let mem = enc.forward(&mut tape, &src, &mut ctx);
                let logits = dec.forward(&mut tape, &prefix, mem, &mut ctx);
                let expect = tape.value(logits).row_slice(prefix_len - 1).to_vec();

                let mut got = vec![0.0f32; 50];
                dec.infer_last_logits(&prefix, &cache, &store, &pool, &mut scratch, &mut got);
                assert_eq!(expect, got, "prefix_len={prefix_len} threads={threads}");
            }
            scratch.put(memory);
        }
    }

    #[test]
    fn causal_mask_shape_and_pattern() {
        let m = causal_mask(3, 3);
        assert_eq!(m.at(0, 1), -1e9);
        assert_eq!(m.at(1, 1), 0.0);
        assert_eq!(m.at(2, 0), 0.0);
        // Rectangular (incremental decoding): query may see all earlier keys.
        let m = causal_mask(1, 4);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }
}
