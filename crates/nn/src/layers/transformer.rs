//! Transformer encoder / decoder stacks.
//!
//! These are the building blocks of both the target classifier ("TinyLm", the
//! stand-in for RoBERTa/DistilBERT) and the InvDA seq2seq model (the stand-in
//! for T5). Pre-norm residual blocks are used for training stability at small
//! scale.

use super::attention::MultiHeadAttention;
use super::embedding::Embedding;
use super::linear::Linear;
use super::norm::LayerNorm;
use super::FwdCtx;
use crate::graph::{AttnMask, NodeId, Tape};
use crate::params::ParamStore;
use crate::tensor::Tensor;
use rotom_rng::rngs::StdRng;

/// Hyper-parameters shared by encoder and decoder stacks.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerConfig {
    /// Vocabulary size (token embedding rows).
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Number of layers.
    pub layers: usize,
    /// Maximum sequence length (positional embedding rows).
    pub max_len: usize,
    /// Dropout probability used in training mode.
    pub dropout: f32,
}

impl TransformerConfig {
    /// A small configuration suitable for unit tests.
    pub fn tiny(vocab: usize) -> Self {
        Self {
            vocab,
            d_model: 32,
            heads: 2,
            d_ff: 64,
            layers: 2,
            max_len: 64,
            dropout: 0.1,
        }
    }
}

/// Additive causal mask of shape `tq x tk`: position `i` may attend to
/// keys `0..=i + (tk - tq)`.
pub fn causal_mask(tq: usize, tk: usize) -> AttnMask {
    let offset = tk - tq;
    let mut m = Tensor::zeros(tq, tk);
    for i in 0..tq {
        for j in (i + offset + 1)..tk {
            *m.at_mut(i, j) = -1e9;
        }
    }
    m
}

/// Position-wise feed-forward block: `Linear -> GELU -> Linear`.
pub struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    /// Register a `d_model -> d_ff -> d_model` block.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        d_model: usize,
        d_ff: usize,
    ) -> Self {
        Self {
            l1: Linear::new(store, rng, &format!("{name}.ff1"), d_model, d_ff),
            l2: Linear::new(store, rng, &format!("{name}.ff2"), d_ff, d_model),
        }
    }

    /// Apply the block.
    pub fn forward(&self, tape: &mut Tape, x: NodeId, store: &ParamStore) -> NodeId {
        let h = self.l1.forward(tape, x, store);
        let h = tape.gelu(h);
        self.l2.forward(tape, h, store)
    }
}

/// Pre-norm Transformer encoder layer.
pub struct EncoderLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff: FeedForward,
    ln2: LayerNorm,
}

impl EncoderLayer {
    /// Register one encoder layer.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        cfg: &TransformerConfig,
    ) -> Self {
        Self {
            attn: MultiHeadAttention::new(
                store,
                rng,
                &format!("{name}.attn"),
                cfg.d_model,
                cfg.heads,
            ),
            ln1: LayerNorm::new(store, rng, &format!("{name}.ln1"), cfg.d_model),
            ff: FeedForward::new(store, rng, &format!("{name}.ff"), cfg.d_model, cfg.d_ff),
            ln2: LayerNorm::new(store, rng, &format!("{name}.ln2"), cfg.d_model),
        }
    }

    /// Apply the layer to a `T x d` node.
    pub fn forward(&self, tape: &mut Tape, x: NodeId, ctx: &mut FwdCtx<'_>) -> NodeId {
        let n1 = self.ln1.forward(tape, x, ctx.store);
        let a = self.attn.forward(tape, n1, n1, None, ctx.store);
        let a = apply_dropout(tape, a, ctx);
        let x = tape.add(x, a);
        let n2 = self.ln2.forward(tape, x, ctx.store);
        let f = self.ff.forward(tape, n2, ctx.store);
        let f = apply_dropout(tape, f, ctx);
        tape.add(x, f)
    }
}

/// Pre-norm Transformer decoder layer with cross-attention.
pub struct DecoderLayer {
    self_attn: MultiHeadAttention,
    ln1: LayerNorm,
    cross_attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff: FeedForward,
    ln3: LayerNorm,
}

impl DecoderLayer {
    /// Register one decoder layer.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        cfg: &TransformerConfig,
    ) -> Self {
        Self {
            self_attn: MultiHeadAttention::new(
                store,
                rng,
                &format!("{name}.self"),
                cfg.d_model,
                cfg.heads,
            ),
            ln1: LayerNorm::new(store, rng, &format!("{name}.ln1"), cfg.d_model),
            cross_attn: MultiHeadAttention::new(
                store,
                rng,
                &format!("{name}.cross"),
                cfg.d_model,
                cfg.heads,
            ),
            ln2: LayerNorm::new(store, rng, &format!("{name}.ln2"), cfg.d_model),
            ff: FeedForward::new(store, rng, &format!("{name}.ff"), cfg.d_model, cfg.d_ff),
            ln3: LayerNorm::new(store, rng, &format!("{name}.ln3"), cfg.d_model),
        }
    }

    /// Apply the layer. `x` is the `Tq x d` decoder state, `memory` the
    /// encoder output, `self_mask` the causal mask.
    pub fn forward(
        &self,
        tape: &mut Tape,
        x: NodeId,
        memory: NodeId,
        self_mask: &AttnMask,
        ctx: &mut FwdCtx<'_>,
    ) -> NodeId {
        let n1 = self.ln1.forward(tape, x, ctx.store);
        let a = self
            .self_attn
            .forward(tape, n1, n1, Some(self_mask), ctx.store);
        let a = apply_dropout(tape, a, ctx);
        let x = tape.add(x, a);
        let n2 = self.ln2.forward(tape, x, ctx.store);
        let c = self.cross_attn.forward(tape, n2, memory, None, ctx.store);
        let c = apply_dropout(tape, c, ctx);
        let x = tape.add(x, c);
        let n3 = self.ln3.forward(tape, x, ctx.store);
        let f = self.ff.forward(tape, n3, ctx.store);
        let f = apply_dropout(tape, f, ctx);
        tape.add(x, f)
    }
}

fn apply_dropout(tape: &mut Tape, x: NodeId, ctx: &mut FwdCtx<'_>) -> NodeId {
    let n = tape.value(x).len();
    let mask = ctx.dropout_mask(n);
    tape.dropout(x, ctx.dropout, mask)
}

/// Token + positional embedding followed by a stack of encoder layers and a
/// final layer norm.
pub struct TransformerEncoder {
    tok: Embedding,
    pos: Embedding,
    layers: Vec<EncoderLayer>,
    ln_f: LayerNorm,
    cfg: TransformerConfig,
}

impl TransformerEncoder {
    /// Register the full encoder stack.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        cfg: TransformerConfig,
    ) -> Self {
        let tok = Embedding::new(store, rng, &format!("{name}.tok"), cfg.vocab, cfg.d_model);
        let pos = Embedding::new(store, rng, &format!("{name}.pos"), cfg.max_len, cfg.d_model);
        let layers = (0..cfg.layers)
            .map(|i| EncoderLayer::new(store, rng, &format!("{name}.enc{i}"), &cfg))
            .collect();
        let ln_f = LayerNorm::new(store, rng, &format!("{name}.lnf"), cfg.d_model);
        Self {
            tok,
            pos,
            layers,
            ln_f,
            cfg,
        }
    }

    /// Configuration used at construction.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Token-embedding parameter id (for weight tying).
    pub fn token_table(&self) -> crate::params::ParamId {
        self.tok.table()
    }

    /// Encode `ids` (truncated to `max_len`) into a `T x d` node.
    pub fn forward(&self, tape: &mut Tape, ids: &[usize], ctx: &mut FwdCtx<'_>) -> NodeId {
        self.forward_with(tape, ids, &[], ctx)
    }

    /// Encode with additional input-feature embeddings (BERT-style segment
    /// ids, duplicate-token flags, …): each `(table, feature_ids)` pair is
    /// looked up and added to the token + position embeddings. Feature id
    /// slices must be at least as long as `ids`.
    pub fn forward_with(
        &self,
        tape: &mut Tape,
        ids: &[usize],
        extras: &[(&Embedding, &[usize])],
        ctx: &mut FwdCtx<'_>,
    ) -> NodeId {
        let t = ids.len().min(self.cfg.max_len);
        let ids = &ids[..t];
        let positions: Vec<usize> = (0..t).collect();
        let te = self.tok.forward(tape, ctx.store, ids);
        let pe = self.pos.forward(tape, ctx.store, &positions);
        let mut x = tape.add(te, pe);
        for (table, feats) in extras {
            assert!(feats.len() >= t, "feature ids shorter than input");
            let fe = table.forward(tape, ctx.store, &feats[..t]);
            x = tape.add(x, fe);
        }
        x = apply_dropout(tape, x, ctx);
        for layer in &self.layers {
            x = layer.forward(tape, x, ctx);
        }
        self.ln_f.forward(tape, x, ctx.store)
    }

    /// Encode and return the first-token ([CLS]) representation as `1 x d`.
    pub fn encode_cls(&self, tape: &mut Tape, ids: &[usize], ctx: &mut FwdCtx<'_>) -> NodeId {
        let h = self.forward(tape, ids, ctx);
        tape.slice_rows(h, 0, 1)
    }

    /// [`encode_cls`](Self::encode_cls) with extra input features.
    pub fn encode_cls_with(
        &self,
        tape: &mut Tape,
        ids: &[usize],
        extras: &[(&Embedding, &[usize])],
        ctx: &mut FwdCtx<'_>,
    ) -> NodeId {
        let h = self.forward_with(tape, ids, extras, ctx);
        tape.slice_rows(h, 0, 1)
    }
}

/// Decoder stack with output projection tied to its own token embedding.
pub struct TransformerDecoder {
    tok: Embedding,
    pos: Embedding,
    layers: Vec<DecoderLayer>,
    ln_f: LayerNorm,
    proj: Linear,
    cfg: TransformerConfig,
}

impl TransformerDecoder {
    /// Register the full decoder stack.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        cfg: TransformerConfig,
    ) -> Self {
        let tok = Embedding::new(store, rng, &format!("{name}.tok"), cfg.vocab, cfg.d_model);
        let pos = Embedding::new(store, rng, &format!("{name}.pos"), cfg.max_len, cfg.d_model);
        let layers = (0..cfg.layers)
            .map(|i| DecoderLayer::new(store, rng, &format!("{name}.dec{i}"), &cfg))
            .collect();
        let ln_f = LayerNorm::new(store, rng, &format!("{name}.lnf"), cfg.d_model);
        let proj = Linear::new(store, rng, &format!("{name}.proj"), cfg.d_model, cfg.vocab);
        Self {
            tok,
            pos,
            layers,
            ln_f,
            proj,
            cfg,
        }
    }

    /// Configuration used at construction.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Decode `ids` against encoder `memory`, returning `T x vocab` logits
    /// (next-token prediction per position, causal).
    pub fn forward(
        &self,
        tape: &mut Tape,
        ids: &[usize],
        memory: NodeId,
        ctx: &mut FwdCtx<'_>,
    ) -> NodeId {
        let t = ids.len().min(self.cfg.max_len);
        let ids = &ids[..t];
        let positions: Vec<usize> = (0..t).collect();
        let te = self.tok.forward(tape, ctx.store, ids);
        let pe = self.pos.forward(tape, ctx.store, &positions);
        let mut x = tape.add(te, pe);
        x = apply_dropout(tape, x, ctx);
        let mask = causal_mask(t, t);
        for layer in &self.layers {
            x = layer.forward(tape, x, memory, &mask, ctx);
        }
        let x = self.ln_f.forward(tape, x, ctx.store);
        self.proj.forward(tape, x, ctx.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    #[test]
    fn encoder_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig::tiny(50);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg);
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(&store);
        let h = enc.forward(&mut tape, &[1, 2, 3, 4], &mut ctx);
        assert_eq!((tape.value(h).rows(), tape.value(h).cols()), (4, 32));
        let cls = enc.encode_cls(&mut tape, &[1, 2, 3, 4], &mut ctx);
        assert_eq!((tape.value(cls).rows(), tape.value(cls).cols()), (1, 32));
    }

    #[test]
    fn encoder_truncates_to_max_len() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let mut cfg = TransformerConfig::tiny(50);
        cfg.max_len = 8;
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg);
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(&store);
        let ids: Vec<usize> = (0..20).map(|i| i % 50).collect();
        let h = enc.forward(&mut tape, &ids, &mut ctx);
        assert_eq!(tape.value(h).rows(), 8);
    }

    #[test]
    fn decoder_logit_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig::tiny(50);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg.clone());
        let dec = TransformerDecoder::new(&mut store, &mut rng, "dec", cfg);
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(&store);
        let mem = enc.forward(&mut tape, &[5, 6, 7], &mut ctx);
        let logits = dec.forward(&mut tape, &[1, 2], mem, &mut ctx);
        assert_eq!(
            (tape.value(logits).rows(), tape.value(logits).cols()),
            (2, 50)
        );
    }

    #[test]
    fn causal_mask_shape_and_pattern() {
        let m = causal_mask(3, 3);
        assert_eq!(m.at(0, 1), -1e9);
        assert_eq!(m.at(1, 1), 0.0);
        assert_eq!(m.at(2, 0), 0.0);
        // Rectangular (incremental decoding): query may see all earlier keys.
        let m = causal_mask(1, 4);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }
}
