//! Telemetry sink integration: install a capture writer, emit through every
//! public entry point, and round-trip the captured JSONL through the schema
//! parser.
//!
//! The sink is process-global and initialize-once, so this file holds a
//! single test function: splitting it up would race sibling tests for the
//! one `install_writer` slot.

use rotom_nn::telemetry::{self, Value};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// `Write` adapter capturing bytes into a shared buffer.
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn emitted_stream_is_schema_valid_jsonl() {
    let buf = Arc::new(Mutex::new(Vec::new()));
    assert!(
        telemetry::install_writer(Box::new(Capture(buf.clone()))),
        "sink must not be initialized before this test"
    );
    assert!(telemetry::enabled());

    telemetry::counter("test.count", 3);
    telemetry::gauge("test.gauge", 0.25);
    {
        let _outer = telemetry::span("test.outer");
        let _inner = telemetry::span("test.inner");
    }
    telemetry::emit(
        "meta",
        "test.decision",
        &[
            ("keep_rate", Value::F64(0.5)),
            ("kept", Value::U64(4)),
            ("note", Value::Str("quoted \"text\"\nline".into())),
            ("bad", Value::F64(f64::NAN)),
        ],
    );
    // Pool dispatch is instrumented too: any helper call while the sink is
    // live must produce a `pool` record, including the inline 1-worker path.
    rotom_nn::RotomPool::new(1).map(4, |i| i);
    rotom_nn::RotomPool::new(4).map(16, |i| i * 2);

    let bytes = buf.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("telemetry output is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 7,
        "expected >= 7 records, got {}",
        lines.len()
    );

    let mut last_ts = None;
    let mut kinds = std::collections::BTreeSet::new();
    for line in &lines {
        let rec = telemetry::parse_line(line)
            .unwrap_or_else(|e| panic!("unparseable record {line:?}: {e}"));
        // Required fields are present by construction of Record; ts_step is
        // strictly increasing because emission is serialized per record.
        if let Some(prev) = last_ts {
            assert!(rec.ts_step > prev, "ts_step must increase: {line:?}");
        }
        last_ts = Some(rec.ts_step);
        assert!(!rec.kind.is_empty() && !rec.name.is_empty());
        kinds.insert(rec.kind.clone());
    }
    for kind in ["counter", "gauge", "span", "meta", "pool"] {
        assert!(kinds.contains(kind), "missing kind {kind:?} in {kinds:?}");
    }

    // Span nesting: the inner span drops first and must record depth 1,
    // the outer depth 0.
    let spans: Vec<_> = lines
        .iter()
        .map(|l| telemetry::parse_line(l).unwrap())
        .filter(|r| r.kind == "span")
        .collect();
    assert_eq!(spans.len(), 2);
    assert_eq!(spans[0].name, "test.inner");
    assert_eq!(spans[0].field("depth"), Some(&Value::U64(1)));
    assert_eq!(spans[1].name, "test.outer");
    assert_eq!(spans[1].field("depth"), Some(&Value::U64(0)));
    for s in &spans {
        assert!(s.field("elapsed_us").is_some());
    }

    // The string field survives escaping, and the non-finite float came
    // back as null.
    let meta = lines
        .iter()
        .map(|l| telemetry::parse_line(l).unwrap())
        .find(|r| r.name == "test.decision")
        .expect("meta record present");
    assert_eq!(
        meta.field("note").and_then(|v| v.as_str()),
        Some("quoted \"text\"\nline")
    );
    assert_eq!(meta.field("bad"), Some(&Value::Null));
    assert_eq!(meta.field("keep_rate").and_then(|v| v.as_f64()), Some(0.5));

    // Pool records exist for both the inline and the fan-out path.
    let pools: Vec<_> = lines
        .iter()
        .map(|l| telemetry::parse_line(l).unwrap())
        .filter(|r| r.kind == "pool")
        .collect();
    assert!(pools.len() >= 2);
    assert!(pools
        .iter()
        .any(|r| r.field("workers") == Some(&Value::U64(1))));
    assert!(pools
        .iter()
        .any(|r| r.field("workers").and_then(|v| v.as_f64()).unwrap_or(0.0) > 1.0));

    // A second install attempt must be rejected (first writer wins).
    assert!(!telemetry::install_writer(Box::new(std::io::sink())));
}
