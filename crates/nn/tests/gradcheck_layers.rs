//! Central-difference gradient checks for every layer in `rotom_nn::layers`
//! and for the composite losses the Rotom pipeline trains with.
//!
//! Each test builds a layer over a fixed random input, reduces its output to
//! a scalar via a fixed random linear functional `L(out) = Σ cᵢⱼ·outᵢⱼ`
//! (so every output coordinate contributes a distinct gradient path), and
//! compares tape gradients against numerical central differences for every
//! trainable parameter coordinate. Dropout is disabled throughout — gradcheck
//! requires a deterministic forward pass.

use rotom_nn::gradcheck::{check, GradCheckOpts};
use rotom_nn::{
    causal_mask, DecoderLayer, Embedding, EncoderLayer, FeedForward, FwdCtx, Gru, LayerNorm,
    Linear, MultiHeadAttention, NodeId, ParamStore, Tape, Tensor, TransformerConfig,
    TransformerDecoder, TransformerEncoder,
};
use rotom_rng::{rngs::StdRng, RngExt, SeedableRng};

fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-scale..=scale))
        .collect();
    Tensor::from_vec(data, rows, cols)
}

/// Reduce `out` to a scalar with a fixed coefficient tensor so that every
/// output coordinate has a distinct, nonzero influence on the loss.
fn project(tape: &mut Tape, out: NodeId, coeff: &Tensor) -> NodeId {
    let c = tape.input(coeff.clone());
    let prod = tape.mul(out, c);
    tape.sum_all(prod)
}

fn default_opts() -> GradCheckOpts {
    GradCheckOpts::default()
}

/// Options for full transformer stacks. Embedding → LayerNorm → attention
/// compositions are far more curved than single layers, so the default
/// ε = 1e-2 leaves visible O(ε²) truncation error (empirically ~0.16 rel on
/// token embeddings); ε = 1.5e-3 trades it against f32 roundoff (~u·|L|/ε ≈
/// 2e-4 absolute), and the 0.1 floor keeps that roundoff from dominating
/// near-zero gradients.
fn deep_opts(eps: f32) -> GradCheckOpts {
    GradCheckOpts {
        eps,
        denom_floor: 0.1,
        ..Default::default()
    }
}

#[test]
fn gradcheck_linear() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, &mut rng, "lin", 4, 5);
    let x = rand_tensor(&mut rng, 3, 4, 1.0);
    let coeff = rand_tensor(&mut rng, 3, 5, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let y = lin.forward(&mut tape, xn, store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
    assert!(report.max_rel_err < 1e-2, "{:.3e}", report.max_rel_err);
}

#[test]
fn gradcheck_linear_without_bias() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    let mut store = ParamStore::new();
    let lin = Linear::with_bias(&mut store, &mut rng, "lin", 3, 4, false);
    let x = rand_tensor(&mut rng, 2, 3, 1.0);
    let coeff = rand_tensor(&mut rng, 2, 4, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let y = lin.forward(&mut tape, xn, store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_embedding_with_repeated_ids() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, &mut rng, "emb", 7, 5);
    // Repeats exercise gradient accumulation into the same table row.
    let ids = [0usize, 2, 2, 6, 2];
    let coeff = rand_tensor(&mut rng, ids.len(), 5, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let y = emb.forward(&mut tape, store, &ids);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_layer_norm() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    let mut store = ParamStore::new();
    let ln = LayerNorm::new(&mut store, &mut rng, "ln", 6);
    let x = rand_tensor(&mut rng, 3, 6, 2.0);
    let coeff = rand_tensor(&mut rng, 3, 6, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let y = ln.forward(&mut tape, xn, store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_attention_unmasked() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
    let x = rand_tensor(&mut rng, 4, 8, 1.0);
    let coeff = rand_tensor(&mut rng, 4, 8, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let y = attn.forward(&mut tape, xn, xn, None, store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_attention_causal_masked() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
    let x = rand_tensor(&mut rng, 4, 8, 1.0);
    let coeff = rand_tensor(&mut rng, 4, 8, 1.0);
    let mask = causal_mask(4, 4);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let y = attn.forward(&mut tape, xn, xn, Some(&mask), store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_cross_attention() {
    let mut rng = StdRng::seed_from_u64(0xA7);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, &mut rng, "attn", 8, 2);
    let q = rand_tensor(&mut rng, 3, 8, 1.0);
    let kv = rand_tensor(&mut rng, 5, 8, 1.0);
    let coeff = rand_tensor(&mut rng, 3, 8, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let qn = tape.input(q.clone());
        let kvn = tape.input(kv.clone());
        let y = attn.forward(&mut tape, qn, kvn, None, store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_gru() {
    let mut rng = StdRng::seed_from_u64(0xA8);
    let mut store = ParamStore::new();
    let gru = Gru::new(&mut store, &mut rng, "gru", 3, 4);
    let x = rand_tensor(&mut rng, 3, 3, 1.0);
    let coeff = rand_tensor(&mut rng, 3, 4, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let y = gru.forward(&mut tape, xn, store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_feed_forward() {
    let mut rng = StdRng::seed_from_u64(0xA9);
    let mut store = ParamStore::new();
    let ff = FeedForward::new(&mut store, &mut rng, "ff", 6, 12);
    let x = rand_tensor(&mut rng, 3, 6, 1.0);
    let coeff = rand_tensor(&mut rng, 3, 6, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let y = ff.forward(&mut tape, xn, store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

fn tiny_cfg(vocab: usize) -> TransformerConfig {
    TransformerConfig {
        vocab,
        d_model: 8,
        heads: 2,
        d_ff: 16,
        layers: 1,
        max_len: 8,
        dropout: 0.0, // gradcheck needs a deterministic forward pass
    }
}

#[test]
fn gradcheck_encoder_layer() {
    let mut rng = StdRng::seed_from_u64(0xAA);
    let mut store = ParamStore::new();
    let cfg = tiny_cfg(16);
    let layer = EncoderLayer::new(&mut store, &mut rng, "enc", &cfg);
    let x = rand_tensor(&mut rng, 4, 8, 1.0);
    let coeff = rand_tensor(&mut rng, 4, 8, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let mut ctx = FwdCtx::eval(store);
        let y = layer.forward(&mut tape, xn, &mut ctx);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_decoder_layer() {
    let mut rng = StdRng::seed_from_u64(0xAB);
    let mut store = ParamStore::new();
    let cfg = tiny_cfg(16);
    let layer = DecoderLayer::new(&mut store, &mut rng, "dec", &cfg);
    let x = rand_tensor(&mut rng, 3, 8, 1.0);
    let memory = rand_tensor(&mut rng, 5, 8, 1.0);
    let coeff = rand_tensor(&mut rng, 3, 8, 1.0);
    let mask = causal_mask(3, 3);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let mem = tape.input(memory.clone());
        let mut ctx = FwdCtx::eval(store);
        let y = layer.forward(&mut tape, xn, mem, &mask, &mut ctx);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_transformer_encoder_stack() {
    let mut rng = StdRng::seed_from_u64(0xAC);
    let mut store = ParamStore::new();
    let cfg = tiny_cfg(12);
    let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg);
    let ids = [1usize, 5, 5, 0, 11];
    let coeff = rand_tensor(&mut rng, ids.len(), 8, 1.0);
    let report = check(&mut store, &deep_opts(1.5e-3), |store, backward| {
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(store);
        let y = enc.forward(&mut tape, &ids, &mut ctx);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

#[test]
fn gradcheck_transformer_decoder_stack() {
    let mut rng = StdRng::seed_from_u64(0xAD);
    let mut store = ParamStore::new();
    let cfg = tiny_cfg(12);
    let dec = TransformerDecoder::new(&mut store, &mut rng, "dec", cfg);
    let ids = [2usize, 7, 1, 9];
    let memory = rand_tensor(&mut rng, 5, 8, 1.0);
    // The decoder projects to vocab logits, so the functional is T x vocab.
    // Scale 0.5 keeps the loss magnitude (and with it f32 roundoff in the
    // finite differences) small enough for the 1e-2 tolerance.
    let coeff = rand_tensor(&mut rng, ids.len(), 12, 0.5);
    let report = check(&mut store, &deep_opts(1e-3), |store, backward| {
        let mut tape = Tape::new();
        let mem = tape.input(memory.clone());
        let mut ctx = FwdCtx::eval(store);
        let y = dec.forward(&mut tape, &ids, mem, &mut ctx);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

/// Composite loss 1: the classifier objective — encoder [CLS] state through
/// a linear head into softmax cross-entropy against a soft target.
#[test]
fn gradcheck_softmax_cross_entropy_head() {
    let mut rng = StdRng::seed_from_u64(0xAE);
    let mut store = ParamStore::new();
    let cfg = tiny_cfg(12);
    let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", cfg);
    let head = Linear::new(&mut store, &mut rng, "head", 8, 3);
    let ids = [3usize, 1, 8, 8];
    let target = [0.2f32, 0.7, 0.1]; // soft labels exercise the full CE path
    let report = check(&mut store, &deep_opts(7e-4), |store, backward| {
        let mut tape = Tape::new();
        let mut ctx = FwdCtx::eval(store);
        let cls = enc.encode_cls(&mut tape, &ids, &mut ctx);
        let logits = head.forward(&mut tape, cls, store);
        let loss = tape.cross_entropy(logits, &target);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

/// Composite loss 2: the Rotom weighting term `‖p_M(x̂) − y‖₂` (paper §4.2),
/// built fully in-graph via softmax → sub → square → sum → sqrt.
#[test]
fn gradcheck_l2_prediction_distance_term() {
    let mut rng = StdRng::seed_from_u64(0xAF);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, &mut rng, "head", 5, 3);
    let x = rand_tensor(&mut rng, 1, 5, 1.0);
    let y = Tensor::from_vec(vec![0.0, 1.0, 0.0], 1, 3);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let yn = tape.input(y.clone());
        let logits = lin.forward(&mut tape, xn, store);
        let p = tape.softmax(logits);
        let d = tape.sub(p, yn);
        let sq = tape.mul(d, d);
        let s = tape.sum_all(sq);
        let loss = tape.sqrt(s);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
        }
        lv
    });
    report.assert_ok();
}

/// Negative control at the layer level: a corrupted analytic gradient must
/// push the report past tolerance, proving the harness has teeth.
#[test]
fn gradcheck_negative_control_flags_bad_layer_gradient() {
    let mut rng = StdRng::seed_from_u64(0xB0);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, &mut rng, "lin", 4, 4);
    let (w_id, _) = lin.params();
    let x = rand_tensor(&mut rng, 2, 4, 1.0);
    let coeff = rand_tensor(&mut rng, 2, 4, 1.0);
    let report = check(&mut store, &default_opts(), |store, backward| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let y = lin.forward(&mut tape, xn, store);
        let loss = project(&mut tape, y, &coeff);
        let lv = tape.value(loss).item();
        if backward {
            tape.backward(loss, store);
            // Simulate a backward-pass bug: flip the sign of one coordinate.
            store.grad_mut(w_id).data_mut()[3] *= -1.0;
        }
        lv
    });
    assert!(
        !report.passed(),
        "gradcheck missed a sign-flipped gradient (max rel err {:.3e})",
        report.max_rel_err
    );
}
