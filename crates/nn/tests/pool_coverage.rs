//! Coverage properties of [`RotomPool::run_ranges`].
//!
//! `run_ranges` is the primitive under the unsafe row-split in the parallel
//! matmul: its soundness argument *requires* that the emitted sub-ranges
//! cover `0..n` exactly once with no overlap (overlap would alias `&mut`
//! views; a gap would leave uninitialized output rows). These tests check
//! that contract over adversarial `(n, granularity, workers)` combinations
//! rather than trusting the arithmetic in `div_ceil` chains.

use rotom_nn::RotomPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `run_ranges(n, g)` on a `workers`-wide pool and assert every index in
/// `0..n` is visited exactly once, every emitted range is non-empty, and
/// every range start is a multiple of `g` (the guarantee the matmul row
/// split relies on to keep whole `MR`-row blocks per worker).
fn assert_exact_cover(n: usize, g: usize, workers: usize) {
    let pool = RotomPool::new(workers);
    let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let ranges = Mutex::new(Vec::new());
    pool.run_ranges(n, g, |r| {
        ranges.lock().unwrap().push((r.start, r.end));
        for i in r {
            hits[i].fetch_add(1, Ordering::Relaxed);
        }
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(
            h.load(Ordering::Relaxed),
            1,
            "index {i} hit wrong count (n={n} g={g} workers={workers})"
        );
    }
    let eff_g = g.max(1);
    for &(start, end) in ranges.lock().unwrap().iter() {
        assert!(start < end, "empty range (n={n} g={g} workers={workers})");
        assert_eq!(
            start % eff_g,
            0,
            "range start {start} not on a granularity boundary \
             (n={n} g={g} workers={workers})"
        );
    }
}

#[test]
fn exhaustive_small_combinations() {
    // Every small n against granularities and worker counts around it —
    // includes n < workers, granularity > n, granularity == n, and the
    // zero-granularity clamp.
    for n in 0..=24 {
        for &g in &[0usize, 1, 2, 3, 4, 7, 16, 25] {
            for &w in &[1usize, 2, 3, 8, 17] {
                assert_exact_cover(n, g, w);
            }
        }
    }
}

#[test]
fn n_zero_emits_no_ranges() {
    let pool = RotomPool::new(4);
    let calls = AtomicUsize::new(0);
    pool.run_ranges(0, 4, |_| {
        calls.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(calls.load(Ordering::Relaxed), 0);
}

#[test]
fn fewer_items_than_workers() {
    // One unit of work, many workers: must degrade to a single inline call
    // covering the whole range, not 17 empty dispatches.
    let pool = RotomPool::new(17);
    let ranges = Mutex::new(Vec::new());
    pool.run_ranges(3, 4, |r| ranges.lock().unwrap().push((r.start, r.end)));
    assert_eq!(*ranges.lock().unwrap(), vec![(0, 3)]);
}

#[test]
fn adversarial_large_combinations() {
    // Sizes where ceil-division remainders interact: prime n, granularity
    // that doesn't divide n, worker counts that don't divide the unit count.
    for &(n, g, w) in &[
        (997, 4, 8),
        (1000, 7, 8),
        (1024, 16, 3),
        (129, 64, 8),
        (4, 4, 64),
        (257, 1, 5),
    ] {
        assert_exact_cover(n, g, w);
    }
}
