//! Store-level pack-cache properties.
//!
//! The kernel-level suite (`kernel_props.rs`) proves the prepacked GEMM
//! entry points match cold packing. These tests climb one level: a matmul
//! routed through a *parameter node* — whose panels fill lazily in the
//! generation's shared slot and are reused across tapes — must be
//! bit-identical to the same graph built from plain input nodes, which
//! never see a pack. That equivalence must survive cache reuse (second
//! tape on a warm slot) and optimizer-update invalidation (the slot must
//! track the new values, not the stale panels).

use rotom_nn::{Adam, ParamId, ParamStore, Tape, Tensor};
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};

fn random_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-2.0f32..2.0))
        .collect();
    Tensor::from_vec(data, rows, cols)
}

/// Forward `A·W` + backward from `sum(A·W)` with `W` as a parameter node
/// (pack-slot path). Returns (forward value, dW, dA).
fn run_param(store: &mut ParamStore, w: ParamId, a: &Tensor) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut tape = Tape::new();
    let an = tape.input(a.clone());
    let wn = tape.param(w, store);
    let c = tape.matmul(an, wn);
    let loss = tape.sum_all(c);
    store.zero_grad();
    tape.backward(loss, store);
    (
        tape.value(c).data().to_vec(),
        store.grad(w).data().to_vec(),
        tape.grad(an).data().to_vec(),
    )
}

/// The identical graph with `W` as a plain input node: no pack slot exists
/// anywhere on this path, so every GEMM packs cold (or runs naive).
fn run_input(store: &ParamStore, w: ParamId, a: &Tensor) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut tape = Tape::new();
    let an = tape.input(a.clone());
    let wn = tape.input(store.value(w).clone());
    let c = tape.matmul(an, wn);
    let loss = tape.sum_all(c);
    let mut scratch = ParamStore::new();
    tape.backward(loss, &mut scratch);
    (
        tape.value(c).data().to_vec(),
        tape.grad(wn).data().to_vec(),
        tape.grad(an).data().to_vec(),
    )
}

fn assert_param_matches_input(store: &mut ParamStore, w: ParamId, a: &Tensor, what: &str) {
    let (cv, dw, da) = run_param(store, w, a);
    let (cv2, dw2, da2) = run_input(store, w, a);
    assert_eq!(cv, cv2, "{what}: forward value diverged");
    assert_eq!(dw, dw2, "{what}: dW diverged");
    assert_eq!(da, da2, "{what}: dA diverged");
}

/// Shapes straddling the tiled-dispatch threshold (`SMALL_FLOPS` = 32³):
/// naive-only, exactly at threshold, above with ragged edges, and a
/// pack-ineligible narrow matrix.
const SHAPES: &[(usize, usize, usize)] = &[
    (4, 32, 32),  // naive path, panels never fill
    (16, 32, 64), // m·k·n = 32768: first shape the tiled path serves
    (33, 48, 40), // above threshold, ragged in every dimension
    (64, 32, 8),  // fewer than NR columns: direct pack ineligible
];

#[test]
fn cached_panels_match_cold_pack_across_shapes() {
    for &(m, k, n) in SHAPES {
        let mut rng = StdRng::seed_from_u64((m * 1000 + k * 10 + n) as u64);
        let mut store = ParamStore::new();
        let wv = random_tensor(&mut rng, k, n);
        let w = store.push("w", wv);
        let a = random_tensor(&mut rng, m, k);
        // First pass fills the slot lazily; second pass reuses warm panels.
        assert_param_matches_input(&mut store, w, &a, &format!("{m}x{k}x{n} cold slot"));
        assert_param_matches_input(&mut store, w, &a, &format!("{m}x{k}x{n} warm slot"));
    }
}

#[test]
fn optimizer_update_invalidates_cached_panels() {
    let (m, k, n) = (33, 48, 40);
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let wv = random_tensor(&mut rng, k, n);
    let w = store.push("w", wv);
    let mut opt = Adam::new(1e-2);
    let mut last_gen = store.generation(w);
    for step in 0..4 {
        let a = random_tensor(&mut rng, m, k);
        // Warm the slot, then check the warm pass still matches cold.
        assert_param_matches_input(&mut store, w, &a, &format!("step {step} fill"));
        assert_param_matches_input(&mut store, w, &a, &format!("step {step} warm"));
        // The optimizer mutates W; a stale pack would reproduce the old
        // values on the next forward.
        opt.step(&mut store);
        let gen = store.generation(w);
        assert!(gen > last_gen, "optimizer step must bump the generation");
        last_gen = gen;
    }
}

#[test]
fn tapes_pin_the_generation_they_snapshot() {
    // A tape created before an update must keep computing with its own
    // snapshot (and its own pack slot) even after the store moves on.
    let (m, k, n) = (16, 32, 64);
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let wv = random_tensor(&mut rng, k, n);
    let w = store.push("w", wv);
    let a = random_tensor(&mut rng, m, k);

    let mut tape = Tape::new();
    let an = tape.input(a.clone());
    let wn = tape.param(w, &store);
    let before = store.value(w).clone();

    // Mutate the store between node creation and the matmul.
    store
        .value_mut(w)
        .data_mut()
        .iter_mut()
        .for_each(|v| *v += 1.0);

    let c = tape.matmul(an, wn);
    let mut expect = vec![0.0f32; m * n];
    rotom_nn::kernels::matmul_into(
        a.data(),
        before.data(),
        m,
        k,
        n,
        rotom_nn::RotomPool::global(),
        &mut expect,
    );
    assert_eq!(
        tape.value(c).data(),
        &expect[..],
        "tape must compute with the snapshot taken at param() time"
    );
}
