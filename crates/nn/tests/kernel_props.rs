//! Property tests for the matmul kernels at adversarial shapes.
//!
//! The unit tests in `kernels.rs` pin a fixed list of shapes; this suite
//! drives all three GEMM variants over *randomly drawn* dimensions biased
//! toward the places tiled kernels break: 0/1 degenerates, off-by-one
//! around the `MR`×`NR` register tile, and sizes straddling the
//! `SMALL_FLOPS` / `PAR_MIN_FLOPS` dispatch thresholds. Every draw is
//! checked against the naive reference at 1, 2, and 8 pool workers, so a
//! bug in tile-edge handling, panel packing, or the parallel row split
//! cannot hide behind a lucky fixed shape.

use rotom_nn::kernels::{
    matmul_naive, matmul_transpose_a_with_pool, matmul_transpose_b_naive,
    matmul_transpose_b_with_pool, matmul_with_pool, transpose, MR, NR, PAR_MIN_FLOPS, SMALL_FLOPS,
};
use rotom_nn::RotomPool;
use rotom_rng::rngs::StdRng;
use rotom_rng::{split_seed, RngExt, SeedableRng};

/// Worker counts exercised for every case: serial, smallest parallel, and a
/// count larger than most row splits (forcing workers > units clamping).
const WORKERS: &[usize] = &[1, 2, 8];

/// Cross-kernel tolerance: the FMA micro-kernel rounds once per fused
/// multiply-add, so tiled and naive results may differ by ~1e-4 per dot
/// product (see the determinism note in `kernels.rs`).
const TOL: f32 = 1e-4;

/// Dimension pool biased toward tile edges: degenerate 0/1, every residue
/// around `MR` = 4 and `NR` = 16, and sizes near the dispatch thresholds.
const DIMS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 33, 48, 63, 65];

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|_| rng.random_range(-2.0f32..2.0))
        .collect()
}

fn assert_close(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (&x, &y)) in got.iter().zip(want).enumerate() {
        assert!(
            (x - y).abs() <= TOL,
            "{ctx}: element {i}: got {x}, want {y}"
        );
    }
}

/// Check all three variants against their naive references for one shape.
/// `Aᵀ·G` has no bespoke naive kernel, so its reference is the naive product
/// of the explicit transpose (same accumulation order).
fn check_shape(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = random_matrix(&mut rng, m, k);
    let b = random_matrix(&mut rng, k, n);
    let bt = random_matrix(&mut rng, n, k);
    let g = random_matrix(&mut rng, m, n);
    let ab = matmul_naive(&a, &b, m, k, n);
    let abt = matmul_transpose_b_naive(&a, &bt, m, k, n);
    let atg = matmul_naive(&transpose(&a, m, k), &g, k, m, n);
    for &w in WORKERS {
        let pool = RotomPool::new(w);
        assert_close(
            &matmul_with_pool(&a, &b, m, k, n, &pool),
            &ab,
            &format!("matmul {m}x{k}x{n} workers={w}"),
        );
        assert_close(
            &matmul_transpose_b_with_pool(&a, &bt, m, k, n, &pool),
            &abt,
            &format!("matmul_tb {m}x{k}x{n} workers={w}"),
        );
        assert_close(
            &matmul_transpose_a_with_pool(&a, &g, m, k, n, &pool),
            &atg,
            &format!("matmul_ta {m}x{k}x{n} workers={w}"),
        );
    }
}

#[test]
fn random_edge_shapes_match_naive() {
    let mut rng = StdRng::seed_from_u64(0x5a5e);
    for case in 0..60u64 {
        let m = DIMS[rng.random_range(0..DIMS.len())];
        let k = DIMS[rng.random_range(0..DIMS.len())];
        let n = DIMS[rng.random_range(0..DIMS.len())];
        check_shape(m, k, n, split_seed(0x5a5f, case));
    }
}

#[test]
fn zero_and_unit_dimensions() {
    // Every combination of a 0 or 1 extent with small non-trivial extents:
    // empty batches (m = 0), rank-0 contractions (k = 0, output must be all
    // zeros), single-row/column products, and the all-degenerate corners.
    for (case, &(m, k, n)) in [
        (0, 5, 7),
        (5, 0, 7),
        (5, 7, 0),
        (0, 0, 0),
        (1, 1, 1),
        (1, 17, 1),
        (1, 1, 33),
        (33, 1, 1),
        (1, 64, 64),
        (64, 64, 1),
        (64, 1, 64),
    ]
    .iter()
    .enumerate()
    {
        check_shape(m, k, n, split_seed(0x5a60, case as u64));
    }
}

#[test]
fn shapes_straddling_dispatch_thresholds() {
    // Shapes chosen to land just below and just above both dispatch cuts,
    // so naive, serial-tiled, and parallel-tiled code paths all run (the
    // parallel path additionally needs m ≥ 2·MR rows to split).
    let below_small = (8, 16, 16); // 2048 < SMALL_FLOPS
    let above_small = (33, 33, 33); // 35937 ≥ SMALL_FLOPS, < PAR_MIN_FLOPS
    let above_par = (80, 65, 72); // 374400 ≥ PAR_MIN_FLOPS
    assert!(below_small.0 * below_small.1 * below_small.2 < SMALL_FLOPS);
    assert!(above_small.0 * above_small.1 * above_small.2 >= SMALL_FLOPS);
    assert!(above_small.0 * above_small.1 * above_small.2 < PAR_MIN_FLOPS);
    assert!(above_par.0 * above_par.1 * above_par.2 >= PAR_MIN_FLOPS);
    for (case, &(m, k, n)) in [below_small, above_small, above_par].iter().enumerate() {
        check_shape(m, k, n, split_seed(0x5a61, case as u64));
    }
}

#[test]
fn non_tile_multiple_shapes_match_naive() {
    // Sweep every residue class around one register tile: m in MR..2·MR,
    // n in NR..2·NR, k fixed off any power of two. Catches edge-kernel
    // indexing bugs for each (ragged rows × ragged cols) combination.
    for m in MR..2 * MR {
        for n in NR..2 * NR {
            check_shape(m, 19, n, split_seed(0x5a62, (m * 100 + n) as u64));
        }
    }
}
