//! End-to-end serving tests for the quantized i8 inference tier: a server
//! booted with `quant: true` serves valid scores close to the f32 tier,
//! reports the tier in `/metrics`, and a plane's score cache never returns
//! a stale f32 score after the tier is toggled.

use rotom_datasets::TaskKind;
use rotom_serve::{
    demo_model, demo_model_config, Client, Endpoint, Server, ServerConfig, TaskPlane,
};
use std::time::Duration;

/// A token sequence long enough that the demo model's encoder GEMMs clear
/// the tiled-kernel threshold, so the i8 tier actually engages.
fn long_input() -> String {
    let words = [
        "a", "movie", "of", "rare", "depth", "and", "feeling", "that", "never", "loses",
    ];
    let tokens: Vec<&str> = (0..40).map(|i| words[i % words.len()]).collect();
    tokens.join(" ")
}

fn boot(quant: bool) -> Server {
    Server::start(ServerConfig {
        window: Duration::from_millis(1),
        score_cache: 0,
        seed: 11,
        quant,
        ..ServerConfig::default()
    })
    .expect("server boots")
}

fn scores_of(body: &str) -> Vec<Vec<f64>> {
    let doc = rotom_serve::json::parse(body).expect("valid JSON");
    doc.get("scores")
        .and_then(rotom_serve::json::Json::as_arr)
        .expect("scores array")
        .iter()
        .map(|row| {
            row.as_arr()
                .expect("score row")
                .iter()
                .map(|v| v.as_f64().expect("score number"))
                .collect()
        })
        .collect()
}

#[test]
fn quant_server_scores_match_f32_closely_and_reports_tier() {
    let f32_server = boot(false);
    let i8_server = boot(true);
    let body = format!(
        "{{\"inputs\": [{}]}}",
        rotom_serve::json::quote(&long_input())
    );

    let mut f32_client = Client::connect(f32_server.local_addr()).unwrap();
    let mut i8_client = Client::connect(i8_server.local_addr()).unwrap();
    let f32_resp = f32_client.post("/classify", &body).unwrap();
    let i8_resp = i8_client.post("/classify", &body).unwrap();
    assert_eq!(f32_resp.status, 200);
    assert_eq!(i8_resp.status, 200);

    let f32_scores = scores_of(&f32_resp.body);
    let i8_scores = scores_of(&i8_resp.body);
    assert_eq!(f32_scores.len(), 1);
    assert_eq!(i8_scores.len(), 1);
    for (f, q) in f32_scores[0].iter().zip(&i8_scores[0]) {
        assert!(q.is_finite() && *q >= 0.0 && *q <= 1.0);
        assert!(
            (f - q).abs() < 0.05,
            "i8 probability drifted from f32: {f} vs {q}"
        );
    }
    let sum: f64 = i8_scores[0].iter().sum();
    assert!((sum - 1.0).abs() < 1e-4, "i8 scores are a distribution");

    // /metrics reports the tier per endpoint plus the dispatch counter.
    let metrics = i8_client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = rotom_serve::json::parse(&metrics.body).expect("metrics JSON parses");
    for name in ["match", "clean", "classify"] {
        assert_eq!(
            doc.get("endpoints")
                .and_then(|e| e.get(name))
                .and_then(|m| m.get("quant"))
                .and_then(|q| q.as_str()),
            Some("i8"),
            "endpoint {name} reports the i8 tier"
        );
    }
    let calls = doc
        .get("gemm")
        .and_then(|g| g.get("quant_i8_calls"))
        .and_then(|v| v.as_u64())
        .expect("gemm.quant_i8_calls present");
    assert!(calls >= 1, "quantized GEMMs were actually dispatched");
}

#[test]
fn toggling_quant_mode_invalidates_plane_score_cache() {
    let cfg = demo_model_config();
    let (model, name) = demo_model(TaskKind::TextClassification, &cfg, 5);
    let plane = TaskPlane::new(Endpoint::Classify, name, model);
    plane.set_score_cache(64);
    let pool = rotom_nn::RotomPool::new(1);
    let inputs = vec![rotom_text::tokenize(&long_input())];

    let f32_scores = plane.score(&inputs, &pool).scores;
    assert_eq!(plane.score(&inputs, &pool).scores, f32_scores);
    let (hits, _, _, _) = plane.cache_stats().unwrap();
    assert_eq!(hits, 1, "second f32 score is a cache hit");

    plane.set_quant_mode(rotom_nn::QuantMode::I8);
    assert_eq!(plane.quant_mode(), rotom_nn::QuantMode::I8);
    let i8_scores = plane.score(&inputs, &pool).scores;
    let (hits_after, misses_after, _, _) = plane.cache_stats().unwrap();
    assert_eq!(
        hits_after, 1,
        "i8 score after the toggle must not hit the stale f32 entry"
    );
    assert!(misses_after >= 2);
    // And the i8 result is itself cached under the new fingerprint.
    assert_eq!(plane.score(&inputs, &pool).scores, i8_scores);
    let (hits_final, _, _, _) = plane.cache_stats().unwrap();
    assert_eq!(hits_final, 2);

    // Toggling back restores the f32 scores bit-exactly.
    plane.set_quant_mode(rotom_nn::QuantMode::F32);
    assert_eq!(plane.score(&inputs, &pool).scores, f32_scores);
}
