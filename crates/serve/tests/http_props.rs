//! Property/fuzz tests for the hand-rolled HTTP/1.1 parser: whatever bytes
//! arrive, `parse_request` must return a clean verdict — `Ok(None)` (need
//! more), `Ok(Some(..))` (complete request + consumed count), or a typed
//! error that maps to a 4xx/5xx — and must **never panic**. Hand-rolled
//! property loops in the style of the workspace `tests/properties.rs`
//! (offline build: no proptest); failures print the case seed.

use rotom_rng::rngs::StdRng;
use rotom_rng::{split_seed, RngCore, RngExt, SeedableRng};
use rotom_serve::http::{parse_request, HttpError, MAX_BODY_BYTES, MAX_HEADERS, MAX_HEAD_BYTES};

const CASES: u64 = 64;

/// Generator: a well-formed request with random method, path, headers, and
/// body.
fn valid_request(rng: &mut StdRng) -> Vec<u8> {
    let method = ["GET", "POST", "PUT", "DELETE", "HEAD"][rng.random_range(0..5usize)];
    let path_len = rng.random_range(1..24usize);
    let path: String = std::iter::once('/')
        .chain((0..path_len).map(|_| (b'a' + rng.random_range(0..26u8)) as char))
        .collect();
    let body: Vec<u8> = if method == "GET" || method == "HEAD" {
        Vec::new()
    } else {
        let n = rng.random_range(0..200usize);
        (0..n).map(|_| rng.random_range(0..=255u8)).collect()
    };
    let mut req = format!("{method} {path} HTTP/1.1\r\n");
    let extra_headers = rng.random_range(0..5usize);
    for i in 0..extra_headers {
        req.push_str(&format!("x-extra-{i}: value-{}\r\n", rng.next_u64()));
    }
    // GET/HEAD may omit Content-Length entirely.
    if !body.is_empty() || rng.random_range(0..2u32) == 0 || method == "POST" || method == "PUT" {
        req.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    req.push_str("\r\n");
    let mut bytes = req.into_bytes();
    bytes.extend_from_slice(&body);
    bytes
}

/// A complete valid request parses, consumes exactly its own bytes, and the
/// parse is stable under arbitrary trailing bytes (pipelining precondition).
#[test]
fn valid_requests_parse_and_consume_exactly() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0x5e41, case));
        let bytes = valid_request(&mut rng);
        let (req, consumed) = parse_request(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: parse error {e:?}"))
            .unwrap_or_else(|| panic!("case {case}: incomplete"));
        assert_eq!(consumed, bytes.len(), "case {case}: consumed all bytes");
        assert!(req.path.starts_with('/'), "case {case}");

        // Append garbage: same request, same consumed count.
        let mut extended = bytes.clone();
        extended.extend_from_slice(b"\x00\xffgarbage after the request");
        let (req2, consumed2) = parse_request(&extended).unwrap().unwrap();
        assert_eq!(consumed2, consumed, "case {case}: trailing bytes ignored");
        assert_eq!(req2.method, req.method, "case {case}");
        assert_eq!(req2.body, req.body, "case {case}");
    }
}

/// Torn reads: every prefix of a valid request is either `Ok(None)` (need
/// more bytes) or an early-detectable error — never a panic, never a bogus
/// complete parse.
#[test]
fn every_byte_prefix_is_incomplete_or_clean_error() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0x70c4, case));
        let bytes = valid_request(&mut rng);
        for cut in 0..bytes.len() {
            match parse_request(&bytes[..cut]) {
                Ok(None) => {}
                Ok(Some((_, consumed))) => {
                    panic!("case {case}: complete parse from prefix {cut} (consumed {consumed})")
                }
                Err(e) => panic!("case {case}: prefix {cut} errored: {e:?}"),
            }
        }
    }
}

/// Feeding a request one byte at a time converges to exactly the same parse
/// as feeding it whole.
#[test]
fn incremental_feed_matches_oneshot_parse() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xfeed, case));
        let bytes = valid_request(&mut rng);
        let oneshot = parse_request(&bytes).unwrap().unwrap();
        let mut buf = Vec::new();
        let mut result = None;
        for &b in &bytes {
            buf.push(b);
            if let Some(parsed) = parse_request(&buf).unwrap() {
                result = Some(parsed);
                break;
            }
        }
        let (req, consumed) = result.expect("converged");
        assert_eq!(consumed, oneshot.1);
        assert_eq!(req.method, oneshot.0.method);
        assert_eq!(req.path, oneshot.0.path);
        assert_eq!(req.body, oneshot.0.body);
    }
}

/// Pipelined requests on one buffer parse back out in order, each consuming
/// its own bytes.
#[test]
fn pipelined_requests_round_trip_in_order() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0x919e, case));
        let k = rng.random_range(2..6usize);
        let requests: Vec<Vec<u8>> = (0..k).map(|_| valid_request(&mut rng)).collect();
        let mut buf: Vec<u8> = requests.concat();
        for (i, original) in requests.iter().enumerate() {
            let (req, consumed) = parse_request(&buf)
                .unwrap_or_else(|e| panic!("case {case} req {i}: {e:?}"))
                .unwrap_or_else(|| panic!("case {case} req {i}: incomplete"));
            assert_eq!(consumed, original.len(), "case {case} req {i}");
            let expect = parse_request(original).unwrap().unwrap().0;
            assert_eq!(req.method, expect.method, "case {case} req {i}");
            assert_eq!(req.path, expect.path, "case {case} req {i}");
            assert_eq!(req.body, expect.body, "case {case} req {i}");
            buf.drain(..consumed);
        }
        assert!(buf.is_empty(), "case {case}: everything consumed");
    }
}

/// Pure random bytes must never panic the parser; if they ever parse as a
/// complete request, the consumed count must be in bounds.
#[test]
fn random_garbage_never_panics() {
    for case in 0..CASES * 4 {
        let mut rng = StdRng::seed_from_u64(split_seed(0x6a4b, case));
        let n = rng.random_range(0..2048usize);
        let bytes: Vec<u8> = (0..n).map(|_| rng.random_range(0..=255u8)).collect();
        match parse_request(&bytes) {
            Ok(Some((_, consumed))) => assert!(consumed <= bytes.len(), "case {case}"),
            Ok(None) | Err(_) => {}
        }
    }
}

/// Mutating single bytes of a valid request must never panic — every
/// outcome is incomplete, complete, or a typed error.
#[test]
fn single_byte_mutations_never_panic() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0x3117, case));
        let bytes = valid_request(&mut rng);
        for _ in 0..64 {
            let mut mutated = bytes.clone();
            let at = rng.random_range(0..mutated.len());
            mutated[at] = rng.random_range(0..=255u8);
            match parse_request(&mutated) {
                Ok(Some((_, consumed))) => assert!(consumed <= mutated.len(), "case {case}"),
                Ok(None) | Err(_) => {}
            }
        }
    }
}

/// Oversized heads are rejected with 431 — even before the head
/// terminator arrives, so a hostile peer cannot force unbounded buffering.
#[test]
fn oversized_heads_reject_with_431() {
    // Terminated oversized head.
    let mut req = b"GET /x HTTP/1.1\r\n".to_vec();
    req.extend_from_slice(format!("big: {}\r\n", "a".repeat(MAX_HEAD_BYTES)).as_bytes());
    req.extend_from_slice(b"\r\n");
    assert!(matches!(
        parse_request(&req),
        Err(HttpError::HeadersTooLarge)
    ));
    // Unterminated: the head already exceeds the cap, so reject now.
    let unterminated = vec![b'a'; MAX_HEAD_BYTES + 1];
    assert!(matches!(
        parse_request(&unterminated),
        Err(HttpError::HeadersTooLarge)
    ));
    // Too many headers, individually small.
    let mut many = b"GET /x HTTP/1.1\r\n".to_vec();
    for i in 0..=MAX_HEADERS {
        many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
    }
    many.extend_from_slice(b"\r\n");
    assert!(matches!(
        parse_request(&many),
        Err(HttpError::HeadersTooLarge)
    ));
}

/// Content-Length abuse: non-numeric, negative, overflowing, conflicting
/// duplicates, and missing-on-POST all map to typed errors; oversized
/// declared bodies reject *before* the body arrives.
#[test]
fn content_length_abuse_maps_to_typed_errors() {
    let cases: [(&[u8], fn(&HttpError) -> bool); 6] = [
        (b"POST /x HTTP/1.1\r\ncontent-length: abc\r\n\r\n", |e| {
            matches!(e, HttpError::BadRequest(_))
        }),
        (b"POST /x HTTP/1.1\r\ncontent-length: -5\r\n\r\n", |e| {
            matches!(e, HttpError::BadRequest(_))
        }),
        (
            b"POST /x HTTP/1.1\r\ncontent-length: 99999999999999999999999\r\n\r\n",
            |e| matches!(e, HttpError::BadRequest(_)),
        ),
        (
            b"POST /x HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 6\r\n\r\n",
            |e| matches!(e, HttpError::BadRequest(_)),
        ),
        (b"POST /x HTTP/1.1\r\n\r\n", |e| {
            matches!(e, HttpError::LengthRequired)
        }),
        (
            b"POST /x HTTP/1.1\r\ncontent-length: 4194305\r\n\r\n",
            |e| matches!(e, HttpError::BodyTooLarge),
        ),
    ];
    for (i, (raw, check)) in cases.iter().enumerate() {
        match parse_request(raw) {
            Err(e) => assert!(check(&e), "case {i}: wrong error {e:?}"),
            other => panic!("case {i}: expected error, got {other:?}"),
        }
    }
    // Declared size exactly at the cap is fine (only the body bytes are
    // awaited).
    let at_cap = format!("POST /x HTTP/1.1\r\ncontent-length: {MAX_BODY_BYTES}\r\n\r\n");
    assert!(matches!(parse_request(at_cap.as_bytes()), Ok(None)));
}

/// Unterminated bodies (Content-Length promises more than arrives) stay
/// `Ok(None)` forever — the server's idle timeout, not the parser, ends
/// them.
#[test]
fn unterminated_bodies_stay_incomplete() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xb0d7, case));
        let declared = rng.random_range(1..500usize);
        let sent = rng.random_range(0..declared);
        let mut req =
            format!("POST /score HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n").into_bytes();
        req.extend(std::iter::repeat_n(b'x', sent));
        assert!(
            matches!(parse_request(&req), Ok(None)),
            "case {case}: {sent}/{declared} body bytes must be incomplete"
        );
    }
}

/// The rest of the taxonomy: bad version → 505, chunked → 501, malformed
/// request lines → 400, and every error's status is a 4xx/5xx.
#[test]
fn error_taxonomy_statuses_are_stable() {
    let version = parse_request(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err();
    assert!(matches!(version, HttpError::UnsupportedVersion));
    assert_eq!(version.status().0, 505);

    let chunked =
        parse_request(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err();
    assert!(matches!(chunked, HttpError::UnsupportedTransferEncoding));
    assert_eq!(chunked.status().0, 501);

    for raw in [
        b"GARBAGE\r\n\r\n".as_slice(),
        b"GET\r\n\r\n".as_slice(),
        b"GET nopath HTTP/1.1\r\n\r\n".as_slice(),
        b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n".as_slice(),
        b"\x00\x01\x02 /x HTTP/1.1\r\n\r\n".as_slice(),
    ] {
        let err = parse_request(raw).unwrap_err();
        let (status, _) = err.status();
        assert!(
            (400..=599).contains(&status),
            "{err:?} must map to an HTTP error status"
        );
    }
}
