//! Windowed request batcher: the piece that turns N concurrent HTTP
//! requests into one [`TinyLm::score_batch`](rotom::TinyLm::score_batch)
//! pass.
//!
//! Connection handlers [`submit`](Batcher::submit) jobs into a shared queue
//! and block on a reply channel. A single batcher thread waits for the
//! first job, then collects same-endpoint jobs for a short window (or until
//! `max_batch`), concatenates their inputs, scores them in one pool pass
//! under the plane's read lock, and splits the scores back out to each
//! job's reply channel. Batches never mix endpoints — each endpoint is a
//! different model.
//!
//! The scoring call is wrapped in `catch_unwind`: a panic inside the
//! forward pass (poisoned pool, bad input) becomes an `Err` reply (a 500)
//! for the jobs in that batch, and the batcher thread survives to serve the
//! next one.

use crate::metrics::ServeMetrics;
use crate::plane::{Endpoint, TaskPlane};
use rotom_nn::RotomPool;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scores for one job, stamped with the plane generation that produced
/// them (see [`ScoredBatch`](crate::plane::ScoredBatch)).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// One probability row per input, input order preserved.
    pub scores: Vec<Vec<f32>>,
    /// Plane swap counter at scoring time.
    pub generation: u64,
    /// Parameter store fingerprint at scoring time.
    pub param_generation: u64,
}

/// The reply a submitted job eventually receives.
pub type JobReply = Result<JobResult, String>;

struct Job {
    endpoint: Endpoint,
    inputs: Vec<Vec<String>>,
    enqueued: Instant,
    reply: mpsc::Sender<JobReply>,
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cond: Condvar,
}

/// Batcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// How long the batcher waits after the first job for more of the same
    /// endpoint before dispatching.
    pub window: Duration,
    /// Dispatch immediately once this many jobs are collected.
    pub max_batch: usize,
    /// Thread width of the scoring pool.
    pub score_threads: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(2),
            max_batch: 32,
            score_threads: 1,
        }
    }
}

/// Handle to the batcher thread. Dropping it shuts the thread down; jobs
/// still queued at shutdown receive an `Err` reply.
pub struct Batcher {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Spawn the batcher thread over `planes` (indexed by
    /// [`Endpoint`] route order).
    pub fn spawn(
        planes: Arc<[TaskPlane; 3]>,
        metrics: Arc<ServeMetrics>,
        cfg: BatcherConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rotom-serve-batcher".into())
            .spawn(move || run_batcher(thread_shared, planes, metrics, cfg))
            .expect("spawn batcher thread");
        Self {
            shared,
            handle: Some(handle),
        }
    }

    /// Queue a scoring job and return the channel its reply arrives on.
    /// The caller blocks on `recv()`; a dropped sender (batcher died) shows
    /// up as a `RecvError`, which callers should treat as a 500.
    pub fn submit(&self, endpoint: Endpoint, inputs: Vec<Vec<String>>) -> mpsc::Receiver<JobReply> {
        let (tx, rx) = mpsc::channel();
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.shutdown {
            let _ = tx.send(Err("server shutting down".into()));
            return rx;
        }
        q.jobs.push_back(Job {
            endpoint,
            inputs,
            enqueued: Instant::now(),
            reply: tx,
        });
        drop(q);
        self.shared.cond.notify_one();
        rx
    }

    /// Signal shutdown and join the batcher thread.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_batcher(
    shared: Arc<Shared>,
    planes: Arc<[TaskPlane; 3]>,
    metrics: Arc<ServeMetrics>,
    cfg: BatcherConfig,
) {
    let pool = RotomPool::new(cfg.score_threads.max(1));
    let max_batch = cfg.max_batch.max(1);
    loop {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        // Wait for work.
        while q.jobs.is_empty() && !q.shutdown {
            q = shared.cond.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        if q.shutdown {
            // Drain: every queued job gets a definitive reply, never a hang.
            for job in q.jobs.drain(..) {
                let _ = job.reply.send(Err("server shutting down".into()));
            }
            return;
        }
        // Collect same-endpoint jobs for one window.
        let endpoint = q.jobs[0].endpoint;
        let deadline = Instant::now() + cfg.window;
        loop {
            let matching = q.jobs.iter().filter(|j| j.endpoint == endpoint).count();
            if matching >= max_batch || q.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timeout) = shared
                .cond
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        // Pull up to max_batch matching jobs, preserving arrival order.
        let mut batch: Vec<Job> = Vec::new();
        let mut i = 0;
        while i < q.jobs.len() && batch.len() < max_batch {
            if q.jobs[i].endpoint == endpoint {
                batch.push(q.jobs.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        drop(q);

        let dispatched = Instant::now();
        let mut all_inputs: Vec<Vec<String>> = Vec::new();
        for job in &batch {
            all_inputs.extend(job.inputs.iter().cloned());
        }
        metrics
            .batches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        metrics
            .batched_jobs
            .fetch_add(batch.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let wait_us: u64 = batch
            .iter()
            .map(|j| dispatched.duration_since(j.enqueued).as_micros() as u64)
            .sum();
        metrics
            .queue_wait_us
            .fetch_add(wait_us, std::sync::atomic::Ordering::Relaxed);

        let plane = &planes[endpoint_index(endpoint)];
        let scored = catch_unwind(AssertUnwindSafe(|| plane.score(&all_inputs, &pool)));
        match scored {
            Ok(out) => {
                let mut offset = 0;
                for job in batch {
                    let n = job.inputs.len();
                    let scores = out.scores[offset..offset + n].to_vec();
                    offset += n;
                    let _ = job.reply.send(Ok(JobResult {
                        scores,
                        generation: out.generation,
                        param_generation: out.param_generation,
                    }));
                }
            }
            Err(_) => {
                for job in batch {
                    let _ = job.reply.send(Err("scoring panicked".into()));
                }
            }
        }
    }
}

/// Route-order index of an endpoint (matches `ServeMetrics::endpoints`).
pub fn endpoint_index(endpoint: Endpoint) -> usize {
    Endpoint::ALL
        .iter()
        .position(|e| *e == endpoint)
        .expect("endpoint in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{demo_model, demo_model_config};

    fn test_planes() -> Arc<[TaskPlane; 3]> {
        let cfg = demo_model_config();
        let planes = Endpoint::ALL.map(|e| {
            let (model, name) = demo_model(e.task_kind(), &cfg, 11);
            TaskPlane::new(e, name, model)
        });
        Arc::new(planes)
    }

    #[test]
    fn batcher_scores_match_direct_plane_scoring() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig {
                window: Duration::from_millis(1),
                max_batch: 8,
                score_threads: 2,
            },
        );
        let inputs = vec![
            rotom_text::tokenize("vivid and moving picture"),
            rotom_text::tokenize("dull lifeless slog"),
        ];
        let rx = batcher.submit(Endpoint::Classify, inputs.clone());
        let reply = rx.recv().expect("reply").expect("scores");
        let direct = planes[endpoint_index(Endpoint::Classify)].score(&inputs, &RotomPool::new(2));
        assert_eq!(reply.scores, direct.scores, "batched == direct, bit-exact");
        assert_eq!(reply.generation, 0);
        assert_eq!(
            metrics.batches.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn concurrent_submissions_ride_one_or_few_batches() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Arc::new(Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig {
                window: Duration::from_millis(20),
                max_batch: 64,
                score_threads: 2,
            },
        ));
        let mut rxs = Vec::new();
        for i in 0..12 {
            let text = format!("sample number {i} with shared phrasing");
            rxs.push((
                i,
                batcher.submit(Endpoint::Match, vec![rotom_text::tokenize(&text)]),
            ));
        }
        for (_, rx) in rxs {
            let reply = rx.recv().expect("reply").expect("scores");
            assert_eq!(reply.scores.len(), 1);
        }
        let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
        let jobs = metrics
            .batched_jobs
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(jobs, 12);
        assert!(
            batches <= 12,
            "jobs must not outnumber batches ({batches} batches)"
        );
    }

    #[test]
    fn shutdown_fails_pending_and_new_jobs_cleanly() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        let mut batcher = Batcher::spawn(planes, metrics, BatcherConfig::default());
        batcher.shutdown();
        let rx = batcher.submit(Endpoint::Clean, vec![vec!["x".to_string()]]);
        let reply = rx.recv().expect("channel alive");
        assert!(reply.is_err(), "post-shutdown submit must fail, not hang");
    }
}
