//! Windowed request batcher: the piece that turns N concurrent HTTP
//! requests into one [`TinyLm::score_batch`](rotom::TinyLm::score_batch)
//! pass — now with overload protection and supervision.
//!
//! Connection handlers [`submit`](Batcher::submit) jobs into a shared queue
//! and block on a reply channel. A single batcher worker thread waits for
//! the first job, then collects same-endpoint jobs for a short window (or
//! until `max_batch`), concatenates their inputs, scores them in one pool
//! pass under the plane's read lock, and splits the scores back out to each
//! job's reply channel. Batches never mix endpoints — each endpoint is a
//! different model.
//!
//! ## Admission control
//!
//! The queue is **bounded** ([`BatcherConfig::max_queue`]) and every job
//! carries a deadline budget ([`BatcherConfig::deadline`]). `submit` sheds
//! — returns [`JobError`] instead of queueing — when the queue is full,
//! when the predicted queue wait (queue depth × an EWMA of recent batch
//! service time) already exceeds the deadline, or when the batcher is
//! draining or shut down. Jobs that sit queued past their deadline are
//! expired with an error rather than scored late. Shedding is deliberate:
//! under sustained overload the server answers `503 Retry-After` quickly
//! instead of silently queueing into latency collapse.
//!
//! ## Supervision
//!
//! The scoring call is wrapped in `catch_unwind`: a panic inside the
//! forward pass becomes an `Err` reply (a 500) for the jobs in that batch,
//! and the worker survives. Panics *outside* that guard (or a wedged
//! forward pass that never returns) are handled by a **watchdog** thread:
//! it detects a finished-by-panic worker or a worker busy longer than
//! [`BatcherConfig::wedge_timeout`] and respawns a fresh worker under a
//! bumped queue generation. Queued jobs survive a respawn (the queue
//! outlives the worker); an orphaned wedged worker still answers the batch
//! it holds, then notices the generation bump and exits without pulling
//! new work. Respawns are counted in `/metrics` as `batcher_respawns`.
//!
//! ## Drain
//!
//! [`Batcher::drain`] flips the queue into drain mode: new submissions are
//! shed, queued jobs are dispatched immediately (no batching window), and
//! the call blocks until the queue is empty and the worker has exited or
//! the drain deadline passes — at which point stragglers are failed and
//! `drain_deadline_exceeded` is incremented.

use crate::metrics::ServeMetrics;
use crate::plane::{Endpoint, TaskPlane};
use rotom_nn::faultpoint::{self, FaultKind};
use rotom_nn::RotomPool;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scores for one job, stamped with the plane generation that produced
/// them (see [`ScoredBatch`](crate::plane::ScoredBatch)).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// One probability row per input, input order preserved.
    pub scores: Vec<Vec<f32>>,
    /// Plane swap counter at scoring time.
    pub generation: u64,
    /// Parameter store fingerprint at scoring time.
    pub param_generation: u64,
}

/// Why a job was refused or failed. Everything except [`ScorePanic`]
/// (`JobError::ScorePanic`) is a *shed*: the server answers `503` with a
/// `Retry-After` hint and the client may retry; a scoring panic is a `500`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The queue is at `max_queue` capacity.
    QueueFull {
        /// Suggested client back-off, in whole seconds.
        retry_after_secs: u32,
    },
    /// Predicted queue wait already exceeds the deadline budget — queueing
    /// would only manufacture a late failure.
    PredictedWait {
        /// Suggested client back-off, in whole seconds.
        retry_after_secs: u32,
    },
    /// The job sat queued past the deadline budget and was expired.
    DeadlineExpired,
    /// The batcher is draining and not accepting new work, or the drain
    /// deadline passed with this job still queued.
    Draining,
    /// The batcher has shut down.
    ShuttingDown,
    /// The forward pass panicked; the batch was lost (but the worker
    /// survived).
    ScorePanic,
}

impl JobError {
    /// The HTTP status this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            JobError::ScorePanic => 500,
            _ => 503,
        }
    }

    /// `Retry-After` hint in seconds, for every shed variant.
    pub fn retry_after_secs(&self) -> Option<u32> {
        match self {
            JobError::QueueFull { retry_after_secs }
            | JobError::PredictedWait { retry_after_secs } => Some(*retry_after_secs),
            JobError::DeadlineExpired | JobError::Draining | JobError::ShuttingDown => Some(1),
            JobError::ScorePanic => None,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::QueueFull { .. } => write!(f, "overloaded: queue full"),
            JobError::PredictedWait { .. } => {
                write!(f, "overloaded: predicted wait exceeds deadline")
            }
            JobError::DeadlineExpired => write!(f, "deadline exceeded while queued"),
            JobError::Draining => write!(f, "server draining"),
            JobError::ShuttingDown => write!(f, "server shutting down"),
            JobError::ScorePanic => write!(f, "scoring panicked"),
        }
    }
}

/// The reply a submitted job eventually receives.
pub type JobReply = Result<JobResult, JobError>;

struct Job {
    endpoint: Endpoint,
    inputs: Vec<Vec<String>>,
    enqueued: Instant,
    reply: mpsc::Sender<JobReply>,
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
    draining: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cond: Condvar,
    /// Worker-generation counter: a worker only pulls new jobs while its
    /// spawn generation matches; the watchdog bumps this to orphan a wedged
    /// worker before respawning.
    generation: AtomicU64,
    /// EWMA of batch service time in µs, fed by the worker after every
    /// batch; `submit` uses it to predict queue wait. 0 until first batch.
    batch_ewma_us: AtomicU64,
    /// Epoch for the `busy_since` timestamps.
    t0: Instant,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }
}

/// Batcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// How long the batcher waits after the first job for more of the same
    /// endpoint before dispatching.
    pub window: Duration,
    /// Dispatch immediately once this many jobs are collected.
    pub max_batch: usize,
    /// Thread width of the scoring pool.
    pub score_threads: usize,
    /// Queue depth cap; submissions beyond it are shed (0 = unbounded).
    pub max_queue: usize,
    /// Deadline budget per job: shed at admission when the predicted queue
    /// wait exceeds it, expire queued jobs that outlive it
    /// (zero = no deadline).
    pub deadline: Duration,
    /// Watchdog: a worker busy scoring one batch longer than this is
    /// considered wedged and replaced.
    pub wedge_timeout: Duration,
    /// Watchdog poll interval.
    pub watchdog_tick: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(2),
            max_batch: 32,
            score_threads: 1,
            max_queue: 1024,
            deadline: Duration::from_secs(10),
            wedge_timeout: Duration::from_secs(2),
            watchdog_tick: Duration::from_millis(20),
        }
    }
}

/// The worker thread currently owned by the watchdog (replaced on respawn).
struct WorkerSlot {
    handle: Option<JoinHandle<()>>,
    /// µs since `Shared::t0` when the worker started scoring its current
    /// batch; 0 while idle. Each worker instance gets its own cell so an
    /// orphaned worker cannot clobber its successor's signal.
    busy_since_us: Arc<AtomicU64>,
}

/// Outcome of a [`Batcher::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every queued job completed before the deadline.
    pub completed: bool,
    /// Jobs failed because the drain deadline passed first.
    pub failed_jobs: usize,
}

/// Handle to the batcher worker + watchdog. Dropping it shuts both down;
/// jobs still queued at shutdown receive an `Err` reply.
pub struct Batcher {
    shared: Arc<Shared>,
    planes: Arc<[TaskPlane; 3]>,
    metrics: Arc<ServeMetrics>,
    cfg: BatcherConfig,
    worker: Arc<Mutex<WorkerSlot>>,
    watchdog_stop: Arc<AtomicBool>,
    watchdog: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Spawn the batcher worker and its watchdog over `planes` (indexed by
    /// [`Endpoint`] route order).
    pub fn spawn(
        planes: Arc<[TaskPlane; 3]>,
        metrics: Arc<ServeMetrics>,
        cfg: BatcherConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
                draining: false,
            }),
            cond: Condvar::new(),
            generation: AtomicU64::new(0),
            batch_ewma_us: AtomicU64::new(0),
            t0: Instant::now(),
        });
        let worker = Arc::new(Mutex::new(spawn_worker(&shared, &planes, &metrics, cfg, 0)));
        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let shared = Arc::clone(&shared);
            let planes = Arc::clone(&planes);
            let metrics = Arc::clone(&metrics);
            let worker = Arc::clone(&worker);
            let stop = Arc::clone(&watchdog_stop);
            std::thread::Builder::new()
                .name("rotom-serve-watchdog".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(cfg.watchdog_tick);
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        watchdog_check(&shared, &planes, &metrics, cfg, &worker);
                    }
                })
                .expect("spawn watchdog thread")
        };
        Self {
            shared,
            planes,
            metrics,
            cfg,
            worker,
            watchdog_stop,
            watchdog: Some(watchdog),
        }
    }

    /// Queue a scoring job and return the channel its reply arrives on, or
    /// shed it (queue full, predicted wait over deadline, draining, shut
    /// down). The caller blocks on `recv()`; a dropped sender (worker died
    /// holding the job) shows up as a `RecvError`, which callers should
    /// treat as a 500.
    pub fn submit(
        &self,
        endpoint: Endpoint,
        inputs: Vec<Vec<String>>,
    ) -> Result<mpsc::Receiver<JobReply>, JobError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.shutdown {
            self.count_shed(1);
            return Err(JobError::ShuttingDown);
        }
        if q.draining {
            self.count_shed(1);
            return Err(JobError::Draining);
        }
        let depth = q.jobs.len();
        if (self.cfg.max_queue > 0 && depth >= self.cfg.max_queue)
            || faultpoint::fire_global(FaultKind::QueueFull).is_some()
        {
            self.count_shed(1);
            return Err(JobError::QueueFull {
                retry_after_secs: self.retry_after_hint(depth),
            });
        }
        if !self.cfg.deadline.is_zero() {
            let predicted = self.predicted_wait(depth + 1);
            if predicted > self.cfg.deadline {
                self.count_shed(1);
                return Err(JobError::PredictedWait {
                    retry_after_secs: self.retry_after_hint(depth),
                });
            }
        }
        let (tx, rx) = mpsc::channel();
        q.jobs.push_back(Job {
            endpoint,
            inputs,
            enqueued: Instant::now(),
            reply: tx,
        });
        self.metrics
            .queue_depth
            .store(q.jobs.len() as u64, Ordering::Relaxed);
        drop(q);
        self.shared.cond.notify_all();
        Ok(rx)
    }

    /// Estimated time for `depth` queued jobs to clear, from the EWMA of
    /// recent batch service times.
    fn predicted_wait(&self, depth: usize) -> Duration {
        let ewma_us = self.shared.batch_ewma_us.load(Ordering::Relaxed);
        if ewma_us == 0 {
            return Duration::ZERO;
        }
        let batches_ahead = depth.div_ceil(self.cfg.max_batch.max(1)) as u64;
        Duration::from_micros(batches_ahead * ewma_us)
    }

    /// `Retry-After` hint for a shed at queue depth `depth`: the predicted
    /// time for the backlog to clear, in whole seconds, clamped to [1, 8].
    fn retry_after_hint(&self, depth: usize) -> u32 {
        let wait = self.predicted_wait(depth);
        (wait.as_secs_f64().ceil() as u32).clamp(1, 8)
    }

    fn count_shed(&self, n: usize) {
        self.metrics
            .shed_total
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Drain mode: stop admitting, dispatch queued jobs immediately (no
    /// batching window), and wait up to `timeout` for the queue to empty
    /// and the worker to exit. Stragglers still queued at the deadline are
    /// failed (counted in `drain_deadline_exceeded`). The batcher is shut
    /// down either way; a subsequent [`shutdown`](Batcher::shutdown) is a
    /// no-op. Idempotent.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        // Watchdog first: a worker exiting because the drain completed must
        // not be "detected" as dead and respawned.
        self.stop_watchdog();
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.shutdown || q.draining {
                return DrainReport {
                    completed: true,
                    failed_jobs: 0,
                };
            }
            q.draining = true;
        }
        self.shared.cond.notify_all();
        let deadline = Instant::now() + timeout;
        // The worker exits once the queue is empty in drain mode; wait for
        // that (bounded — it may be wedged inside a forward pass).
        loop {
            let finished = {
                let slot = self.worker.lock().unwrap_or_else(|e| e.into_inner());
                slot.handle.as_ref().map_or(true, |h| h.is_finished())
            };
            if finished {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(2)));
        }
        // Deadline enforcement: fail whatever is still queued. Orphan a
        // still-running worker (generation bump) so it cannot pull more.
        self.shared.generation.fetch_add(1, Ordering::SeqCst);
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        let failed = q.jobs.len();
        if failed > 0 {
            self.metrics
                .drain_deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            self.count_shed(failed);
            for job in q.jobs.drain(..) {
                let _ = job.reply.send(Err(JobError::Draining));
            }
        }
        q.shutdown = true;
        self.metrics.queue_depth.store(0, Ordering::Relaxed);
        drop(q);
        self.shared.cond.notify_all();
        DrainReport {
            completed: failed == 0,
            failed_jobs: failed,
        }
    }

    fn stop_watchdog(&self) {
        self.watchdog_stop.store(true, Ordering::SeqCst);
    }

    /// Signal shutdown, fail queued jobs, and join the worker + watchdog.
    pub fn shutdown(&mut self) {
        self.stop_watchdog();
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        let handle = {
            let mut slot = self.worker.lock().unwrap_or_else(|e| e.into_inner());
            slot.handle.take()
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
        // Keep Drop-time borrow checker happy about unused fields.
        let _ = (&self.planes, &self.cfg);
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn one worker generation. The queue (inside `shared`) outlives
/// workers, so queued jobs survive a respawn.
fn spawn_worker(
    shared: &Arc<Shared>,
    planes: &Arc<[TaskPlane; 3]>,
    metrics: &Arc<ServeMetrics>,
    cfg: BatcherConfig,
    generation: u64,
) -> WorkerSlot {
    let busy_since_us = Arc::new(AtomicU64::new(0));
    let handle = {
        let shared = Arc::clone(shared);
        let planes = Arc::clone(planes);
        let metrics = Arc::clone(metrics);
        let busy = Arc::clone(&busy_since_us);
        std::thread::Builder::new()
            .name(format!("rotom-serve-batcher-{generation}"))
            .spawn(move || run_worker(shared, planes, metrics, cfg, generation, busy))
            .expect("spawn batcher worker thread")
    };
    WorkerSlot {
        handle: Some(handle),
        busy_since_us,
    }
}

/// One watchdog tick: respawn the worker if it died (panic escaped the
/// score guard) or wedged (busy on one batch past `wedge_timeout`).
fn watchdog_check(
    shared: &Arc<Shared>,
    planes: &Arc<[TaskPlane; 3]>,
    metrics: &Arc<ServeMetrics>,
    cfg: BatcherConfig,
    worker: &Arc<Mutex<WorkerSlot>>,
) {
    {
        let q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.shutdown || q.draining {
            return;
        }
    }
    let mut slot = worker.lock().unwrap_or_else(|e| e.into_inner());
    let dead = slot.handle.as_ref().map_or(true, |h| h.is_finished());
    let wedged = {
        let busy = slot.busy_since_us.load(Ordering::Relaxed);
        busy != 0 && shared.now_us().saturating_sub(busy) > cfg.wedge_timeout.as_micros() as u64
    };
    if !dead && !wedged {
        return;
    }
    // Fresh queue generation: an orphaned wedged worker finishes (and
    // answers) the batch it holds, then sees the bump and exits without
    // pulling new jobs.
    let generation = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
    if dead {
        if let Some(h) = slot.handle.take() {
            let _ = h.join(); // finished: reaps immediately
        }
    }
    // A wedged worker's handle is dropped (detached) — it exits on its own.
    *slot = spawn_worker(shared, planes, metrics, cfg, generation);
    metrics.batcher_respawns.fetch_add(1, Ordering::Relaxed);
    rotom_nn::telemetry::counter("serve.batcher_respawns", 1);
    shared.cond.notify_all();
}

fn run_worker(
    shared: Arc<Shared>,
    planes: Arc<[TaskPlane; 3]>,
    metrics: Arc<ServeMetrics>,
    cfg: BatcherConfig,
    generation: u64,
    busy_since_us: Arc<AtomicU64>,
) {
    let pool = RotomPool::new(cfg.score_threads.max(1));
    let max_batch = cfg.max_batch.max(1);
    loop {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        // Wait for work (or a state change).
        while q.jobs.is_empty() && !q.shutdown && !q.draining {
            q = shared.cond.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        if q.shutdown {
            // Fail every queued job definitively, never a hang.
            let n = q.jobs.len();
            if n > 0 {
                metrics.shed_total.fetch_add(n as u64, Ordering::Relaxed);
            }
            for job in q.jobs.drain(..) {
                let _ = job.reply.send(Err(JobError::ShuttingDown));
            }
            metrics.queue_depth.store(0, Ordering::Relaxed);
            return;
        }
        if shared.generation.load(Ordering::SeqCst) != generation {
            return; // orphaned by the watchdog: successor owns the queue
        }
        if q.draining && q.jobs.is_empty() {
            return; // drained clean
        }
        // Supervisor-visible thread death (chaos suites): panic *outside*
        // the score guard, killing this worker. The watchdog respawns it
        // and the queue — including the job that woke us — survives.
        if faultpoint::fire_global(FaultKind::BatcherDie).is_some() {
            drop(q);
            panic!("injected batcher_die faultpoint");
        }
        // Expire jobs that outlived their deadline budget (deque order is
        // arrival order, so expired jobs cluster at the front).
        if !cfg.deadline.is_zero() {
            let now = Instant::now();
            let mut expired = 0usize;
            while let Some(front) = q.jobs.front() {
                if now.duration_since(front.enqueued) <= cfg.deadline {
                    break;
                }
                let job = q.jobs.pop_front().expect("front exists");
                let _ = job.reply.send(Err(JobError::DeadlineExpired));
                expired += 1;
            }
            if expired > 0 {
                metrics
                    .shed_total
                    .fetch_add(expired as u64, Ordering::Relaxed);
                metrics
                    .queue_depth
                    .store(q.jobs.len() as u64, Ordering::Relaxed);
                if q.jobs.is_empty() {
                    continue;
                }
            }
        }
        // Collect same-endpoint jobs for one window. Draining skips the
        // window: latency batching is pointless when the goal is to finish.
        let endpoint = q.jobs[0].endpoint;
        let deadline = Instant::now() + cfg.window;
        while !q.draining && !q.shutdown {
            let matching = q.jobs.iter().filter(|j| j.endpoint == endpoint).count();
            if matching >= max_batch {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timeout) = shared
                .cond
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        // Pull up to max_batch matching jobs, preserving arrival order.
        let mut batch: Vec<Job> = Vec::new();
        let mut i = 0;
        while i < q.jobs.len() && batch.len() < max_batch {
            if q.jobs[i].endpoint == endpoint {
                batch.push(q.jobs.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        metrics
            .queue_depth
            .store(q.jobs.len() as u64, Ordering::Relaxed);
        drop(q);
        if batch.is_empty() {
            continue;
        }

        let dispatched = Instant::now();
        let mut all_inputs: Vec<Vec<String>> = Vec::new();
        for job in &batch {
            all_inputs.extend(job.inputs.iter().cloned());
        }
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        metrics
            .batched_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let wait_us: u64 = batch
            .iter()
            .map(|j| dispatched.duration_since(j.enqueued).as_micros() as u64)
            .sum();
        metrics.queue_wait_us.fetch_add(wait_us, Ordering::Relaxed);

        let plane = &planes[endpoint_index(endpoint)];
        busy_since_us.store(shared.now_us().max(1), Ordering::Relaxed);
        let scored = catch_unwind(AssertUnwindSafe(|| plane.score(&all_inputs, &pool)));
        busy_since_us.store(0, Ordering::Relaxed);
        // Feed the admission-control estimate: EWMA (α=1/4) of batch
        // service time.
        let batch_us = (dispatched.elapsed().as_micros() as u64).max(1);
        let old = shared.batch_ewma_us.load(Ordering::Relaxed);
        let ewma = if old == 0 {
            batch_us
        } else {
            (3 * old + batch_us) / 4
        };
        shared.batch_ewma_us.store(ewma, Ordering::Relaxed);

        match scored {
            Ok(out) => {
                let mut offset = 0;
                for job in batch {
                    let n = job.inputs.len();
                    let scores = out.scores[offset..offset + n].to_vec();
                    offset += n;
                    let _ = job.reply.send(Ok(JobResult {
                        scores,
                        generation: out.generation,
                        param_generation: out.param_generation,
                    }));
                }
            }
            Err(_) => {
                for job in batch {
                    let _ = job.reply.send(Err(JobError::ScorePanic));
                }
            }
        }
    }
}

/// Route-order index of an endpoint (matches `ServeMetrics::endpoints`).
pub fn endpoint_index(endpoint: Endpoint) -> usize {
    Endpoint::ALL
        .iter()
        .position(|e| *e == endpoint)
        .expect("endpoint in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{demo_model, demo_model_config};

    fn test_planes() -> Arc<[TaskPlane; 3]> {
        let cfg = demo_model_config();
        let planes = Endpoint::ALL.map(|e| {
            let (model, name) = demo_model(e.task_kind(), &cfg, 11);
            TaskPlane::new(e, name, model)
        });
        Arc::new(planes)
    }

    #[test]
    fn batcher_scores_match_direct_plane_scoring() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig {
                window: Duration::from_millis(1),
                max_batch: 8,
                score_threads: 2,
                ..BatcherConfig::default()
            },
        );
        let inputs = vec![
            rotom_text::tokenize("vivid and moving picture"),
            rotom_text::tokenize("dull lifeless slog"),
        ];
        let rx = batcher
            .submit(Endpoint::Classify, inputs.clone())
            .expect("admitted");
        let reply = rx.recv().expect("reply").expect("scores");
        let direct = planes[endpoint_index(Endpoint::Classify)].score(&inputs, &RotomPool::new(2));
        assert_eq!(reply.scores, direct.scores, "batched == direct, bit-exact");
        assert_eq!(reply.generation, 0);
        assert_eq!(
            metrics.batches.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn concurrent_submissions_ride_one_or_few_batches() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Arc::new(Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig {
                window: Duration::from_millis(20),
                max_batch: 64,
                score_threads: 2,
                ..BatcherConfig::default()
            },
        ));
        let mut rxs = Vec::new();
        for i in 0..12 {
            let text = format!("sample number {i} with shared phrasing");
            rxs.push((
                i,
                batcher
                    .submit(Endpoint::Match, vec![rotom_text::tokenize(&text)])
                    .expect("admitted"),
            ));
        }
        for (_, rx) in rxs {
            let reply = rx.recv().expect("reply").expect("scores");
            assert_eq!(reply.scores.len(), 1);
        }
        let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
        let jobs = metrics
            .batched_jobs
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(jobs, 12);
        assert!(
            batches <= 12,
            "jobs must not outnumber batches ({batches} batches)"
        );
    }

    #[test]
    fn shutdown_sheds_new_jobs_instead_of_hanging() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        let mut batcher = Batcher::spawn(planes, Arc::clone(&metrics), BatcherConfig::default());
        batcher.shutdown();
        let err = batcher
            .submit(Endpoint::Clean, vec![vec!["x".to_string()]])
            .expect_err("post-shutdown submit must shed, not hang");
        assert_eq!(err, JobError::ShuttingDown);
        assert_eq!(err.status(), 503);
        assert_eq!(err.retry_after_secs(), Some(1));
        assert!(metrics.shed_total.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn full_queue_sheds_with_retry_after() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        // max_queue of 1 with a long window: the first job parks in the
        // queue long enough for the second submit to see it there. To keep
        // this deterministic regardless of worker timing, pause the worker
        // by occupying it: max_queue=0 can't, so instead use the faultpoint.
        let batcher = Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig::default(),
        );
        faultpoint::arm_global("queue_full").unwrap();
        let err = batcher
            .submit(Endpoint::Clean, vec![vec!["x".to_string()]])
            .expect_err("forced queue-full must shed");
        assert!(matches!(err, JobError::QueueFull { .. }));
        assert_eq!(err.status(), 503);
        assert!(err.retry_after_secs().unwrap() >= 1);
        assert_eq!(metrics.shed_total.load(Ordering::Relaxed), 1);
        // Disarmed after one shot: the next submit is admitted and scored.
        let rx = batcher
            .submit(Endpoint::Clean, vec![vec!["x".to_string()]])
            .expect("admitted after the one-shot fault");
        assert!(rx.recv().expect("reply").is_ok());
        faultpoint::clear_global();
    }

    #[test]
    fn drain_completes_queued_jobs_then_refuses_new_ones() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig {
                // A long window the drain must cut through.
                window: Duration::from_secs(5),
                max_batch: 64,
                ..BatcherConfig::default()
            },
        );
        let mut rxs = Vec::new();
        for _ in 0..4 {
            rxs.push(
                batcher
                    .submit(Endpoint::Classify, vec![rotom_text::tokenize("small film")])
                    .expect("admitted"),
            );
        }
        let report = batcher.drain(Duration::from_secs(10));
        assert!(report.completed, "drain must finish queued work");
        assert_eq!(report.failed_jobs, 0);
        for rx in rxs {
            assert!(
                rx.recv().expect("reply").is_ok(),
                "accepted jobs complete during drain"
            );
        }
        let err = batcher
            .submit(Endpoint::Classify, vec![rotom_text::tokenize("late")])
            .expect_err("post-drain submit is refused");
        assert_eq!(err.status(), 503);
        assert_eq!(
            metrics.drain_deadline_exceeded.load(Ordering::Relaxed),
            0,
            "clean drain must not count as deadline-exceeded"
        );
    }

    #[test]
    fn queue_depth_gauge_tracks_submissions() {
        let planes = test_planes();
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig::default(),
        );
        let rx = batcher
            .submit(Endpoint::Match, vec![rotom_text::tokenize("acme phone")])
            .expect("admitted");
        // The gauge was 1 at submit; after the reply the batch was pulled
        // and it must be back to 0.
        let _ = rx.recv().expect("reply");
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);
    }
}
