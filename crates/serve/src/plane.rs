//! Serving planes: one hot-swappable model slot per task family.
//!
//! A [`TaskPlane`] owns one [`TinyLm`] behind an `RwLock` and maps it to one
//! scoring endpoint (`/match`, `/clean`, `/classify`). Scoring takes the
//! read lock and runs the tape-free [`TinyLm::score_batch`]; a hot swap
//! ([`TaskPlane::swap`]) takes the write lock and loads a checkpoint into
//! the live model. The lock is what makes swap-under-load sound at the
//! *request* granularity — a batch holds the read lock for its entire
//! forward pass, so every response is computed wholly under the old or
//! wholly under the new weights, never a torn mix. Below the lock, the
//! existing generation machinery makes the swap itself cheap and safe:
//!
//! * every parameter write during the checkpoint load bumps that entry's
//!   generation and detaches a **fresh [`ParamPacks`] slot**
//!   (`rotom_nn::params`), so packed GEMM panels are re-packed lazily under
//!   the new weights and never mix generations;
//! * the model's [`ScoreCache`](rotom_nn::ScoreCache), keyed on the store's
//!   monotone `generation_sum`, self-invalidates wholesale on the first
//!   lookup after the swap — a cached score can never cross a swap.
//!
//! Each plane carries a `swaps` counter updated under the same write lock;
//! responses echo it (with the parameter `generation_sum`) so clients — and
//! the concurrent-swap test — can attribute every score to one exact
//! parameter state.

use rotom::{ModelConfig, TinyLm};
use rotom_datasets::{
    edt::{self, EdtConfig, EdtFlavor},
    em::{self, EmConfig, EmFlavor},
    textcls::{self, TextClsConfig, TextClsFlavor},
    TaskKind,
};
use rotom_nn::{CheckpointError, RotomPool};
use std::path::Path;
use std::sync::RwLock;

/// The scoring endpoints the server exposes, one per Rotom task family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `/match` — entity matching (binary: match / no-match).
    Match,
    /// `/clean` — error detection (binary: clean / dirty).
    Clean,
    /// `/classify` — text classification (k classes).
    Classify,
}

impl Endpoint {
    /// All endpoints, in route order.
    pub const ALL: [Endpoint; 3] = [Endpoint::Match, Endpoint::Clean, Endpoint::Classify];

    /// The HTTP route (`/match`, `/clean`, `/classify`).
    pub fn path(self) -> &'static str {
        match self {
            Endpoint::Match => "/match",
            Endpoint::Clean => "/clean",
            Endpoint::Classify => "/classify",
        }
    }

    /// The endpoint name without the slash (used in JSON payloads).
    pub fn name(self) -> &'static str {
        &self.path()[1..]
    }

    /// Parse an endpoint name (`"match"`, `"clean"`, `"classify"`).
    pub fn from_name(name: &str) -> Option<Endpoint> {
        Endpoint::ALL.into_iter().find(|e| e.name() == name)
    }

    /// The task family this endpoint serves.
    pub fn task_kind(self) -> TaskKind {
        match self {
            Endpoint::Match => TaskKind::EntityMatching,
            Endpoint::Clean => TaskKind::ErrorDetection,
            Endpoint::Classify => TaskKind::TextClassification,
        }
    }
}

/// Everything guarded by a plane's lock: the model and the swap counter
/// (updated together, under the write lock, so a reader always sees a
/// matched pair).
struct Slot {
    model: TinyLm,
    swaps: u64,
}

/// One batch's scores, stamped with the exact parameter state that produced
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredBatch {
    /// Per-input class probabilities, input order preserved.
    pub scores: Vec<Vec<f32>>,
    /// The plane's swap counter at scoring time (0 = boot weights).
    pub generation: u64,
    /// The parameter store's monotone generation fingerprint.
    pub param_generation: u64,
}

/// Outcome of a successful hot swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapInfo {
    /// The plane's swap counter after the swap.
    pub generation: u64,
    /// The parameter fingerprint after the swap (strictly greater than any
    /// fingerprint scored under the old weights).
    pub param_generation: u64,
}

/// A hot-swappable model slot serving one endpoint.
pub struct TaskPlane {
    endpoint: Endpoint,
    model_name: String,
    num_classes: usize,
    slot: RwLock<Slot>,
}

impl TaskPlane {
    /// Wrap `model` as the serving slot for `endpoint`.
    pub fn new(endpoint: Endpoint, model_name: impl Into<String>, model: TinyLm) -> Self {
        let num_classes = model.num_classes();
        Self {
            endpoint,
            model_name: model_name.into(),
            num_classes,
            slot: RwLock::new(Slot { model, swaps: 0 }),
        }
    }

    /// The endpoint this plane serves.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint
    }

    /// Name of the model/dataset the plane was built for (payload metadata).
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Number of classes in every score row.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Score a batch on the tape-free inference plane under the read lock.
    /// The swap counter and parameter fingerprint are captured under the
    /// same lock, so they describe exactly the weights that produced the
    /// scores.
    ///
    /// Two serve-side faultpoints fire here (before the lock, so a stalled
    /// batch never blocks a hot swap): `slow_score` stalls the batch for
    /// its argument in milliseconds (default 200 — long enough to trip a
    /// test-sized wedge timeout), `score_panic` panics. Both are one-shot
    /// and armed only via [`rotom_nn::faultpoint::arm_global`]/`ROTOM_FAULT`;
    /// the disarmed check is one relaxed atomic load.
    pub fn score(&self, inputs: &[Vec<String>], pool: &RotomPool) -> ScoredBatch {
        use rotom_nn::faultpoint::{self, FaultKind};
        if let Some(ms) = faultpoint::fire_global(FaultKind::SlowScore) {
            std::thread::sleep(std::time::Duration::from_millis(if ms == 0 {
                200
            } else {
                ms
            }));
        }
        if faultpoint::fire_global(FaultKind::ScorePanic).is_some() {
            panic!("injected score_panic faultpoint");
        }
        let slot = self.slot.read().unwrap_or_else(|e| e.into_inner());
        ScoredBatch {
            scores: slot.model.score_batch(inputs, pool),
            generation: slot.swaps,
            param_generation: slot.model.generation_sum(),
        }
    }

    /// Load a StateBag v2 (or legacy v1) checkpoint into the live model
    /// under the write lock. In-flight batches drain first; batches queued
    /// behind the swap score wholly under the new weights.
    pub fn swap(&self, checkpoint: impl AsRef<Path>) -> Result<SwapInfo, CheckpointError> {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        slot.model.load_checkpoint(checkpoint)?;
        slot.swaps += 1;
        Ok(SwapInfo {
            generation: slot.swaps,
            param_generation: slot.model.generation_sum(),
        })
    }

    /// Current `(generation, param_generation)` without scoring.
    pub fn generations(&self) -> (u64, u64) {
        let slot = self.slot.read().unwrap_or_else(|e| e.into_inner());
        (slot.swaps, slot.model.generation_sum())
    }

    /// Enable (capacity > 0) or disable the model's score cache.
    pub fn set_score_cache(&self, capacity: usize) {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        slot.model.set_score_cache(capacity);
    }

    /// Select the inference GEMM tier (f32 or quantized i8) for this plane's
    /// model. Taken under the write lock, so in-flight batches drain first
    /// and later batches score wholly under the new tier; the model's score
    /// cache self-invalidates because the tier is folded into its
    /// fingerprint.
    pub fn set_quant_mode(&self, mode: rotom_nn::QuantMode) {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        slot.model.set_quant_mode(mode);
    }

    /// The plane's active inference GEMM tier.
    pub fn quant_mode(&self) -> rotom_nn::QuantMode {
        let slot = self.slot.read().unwrap_or_else(|e| e.into_inner());
        slot.model.quant_mode()
    }

    /// Score-cache statistics `(hits, misses, evictions, entries)`, if the
    /// cache is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64, u64, usize)> {
        let slot = self.slot.read().unwrap_or_else(|e| e.into_inner());
        slot.model.score_cache().map(|c| {
            let (h, m) = c.hit_miss();
            (h, m, c.evictions(), c.len())
        })
    }
}

/// The model configuration demo planes are built with: small enough to boot
/// in well under a second per plane, wide enough that batched scoring is
/// real work.
pub fn demo_model_config() -> ModelConfig {
    ModelConfig {
        d_model: 32,
        heads: 4,
        d_ff: 64,
        layers: 1,
        max_len: 48,
        vocab_size: 2048,
        // Construction-time only; the demo server boots with randomly
        // initialized (but seed-deterministic) weights and expects real
        // weights to arrive via `/admin/swap`.
        pretrain_epochs: 0,
        pair_pretrain_epochs: 0,
        ..ModelConfig::default()
    }
}

/// Build a deterministic demo model for one task family: a synthetic task
/// corpus from `rotom_datasets` fixes the vocabulary, and `seed` fixes the
/// initial weights. Two calls with the same arguments produce bit-identical
/// models — the property the serving equivalence tests lean on — and a
/// checkpoint saved from one loads into the other. Returns the model and
/// the synthetic dataset's name.
pub fn demo_model(kind: TaskKind, cfg: &ModelConfig, seed: u64) -> (TinyLm, String) {
    let (corpus, num_classes, name) = match kind {
        TaskKind::EntityMatching => {
            let data = em::generate(
                EmFlavor::AbtBuy,
                &EmConfig {
                    num_entities: 120,
                    train_pairs: 160,
                    test_pairs: 20,
                    seed,
                    ..EmConfig::default()
                },
            )
            .to_task();
            (plane_corpus(&data), data.num_classes, data.name)
        }
        TaskKind::ErrorDetection => {
            let data = edt::generate(
                EdtFlavor::Beers,
                &EdtConfig {
                    rows: Some(80),
                    seed,
                    ..EdtConfig::default()
                },
            )
            .to_task();
            (plane_corpus(&data), data.num_classes, data.name)
        }
        TaskKind::TextClassification => {
            let data = textcls::generate(
                TextClsFlavor::Sst2,
                &TextClsConfig {
                    train_pool: 160,
                    test: 20,
                    unlabeled: 40,
                    seed,
                },
            );
            (plane_corpus(&data), data.num_classes, data.name)
        }
    };
    (
        TinyLm::from_corpus(&corpus, num_classes, cfg, 5e-4, seed),
        name,
    )
}

/// The vocabulary-building corpus for a task: labeled pool + unlabeled
/// sequences.
fn plane_corpus(task: &rotom_datasets::TaskDataset) -> Vec<Vec<String>> {
    task.train_pool
        .iter()
        .map(|e| e.tokens.clone())
        .chain(task.unlabeled.iter().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_names_roundtrip() {
        for e in Endpoint::ALL {
            assert_eq!(Endpoint::from_name(e.name()), Some(e));
            assert_eq!(e.path(), format!("/{}", e.name()));
        }
        assert_eq!(Endpoint::from_name("nope"), None);
    }

    #[test]
    fn demo_models_are_seed_deterministic() {
        let cfg = demo_model_config();
        let (a, name_a) = demo_model(TaskKind::TextClassification, &cfg, 3);
        let (b, name_b) = demo_model(TaskKind::TextClassification, &cfg, 3);
        assert_eq!(name_a, name_b);
        assert_eq!(a.snapshot(), b.snapshot());
        let (c, _) = demo_model(TaskKind::TextClassification, &cfg, 4);
        assert_ne!(a.snapshot(), c.snapshot());
    }

    #[test]
    fn plane_scores_and_stamps_generations() {
        let cfg = demo_model_config();
        let (model, name) = demo_model(TaskKind::TextClassification, &cfg, 1);
        let plane = TaskPlane::new(Endpoint::Classify, name, model);
        let pool = RotomPool::new(2);
        let inputs = vec![rotom_text::tokenize("a fine movie")];
        let out = plane.score(&inputs, &pool);
        assert_eq!(out.scores.len(), 1);
        assert_eq!(out.scores[0].len(), plane.num_classes());
        assert_eq!(out.generation, 0);
        assert!((out.scores[0].iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn swap_reloads_weights_and_bumps_generation() {
        let cfg = demo_model_config();
        let (model, name) = demo_model(TaskKind::TextClassification, &cfg, 1);
        // A second identically-seeded model plays the "trained elsewhere"
        // role: perturb it so the checkpoints differ.
        let (mut other, _) = demo_model(TaskKind::TextClassification, &cfg, 1);
        let dir = std::env::temp_dir().join("rotom_serve_plane_swap");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt_a = dir.join("a.ckpt");
        let ckpt_b = dir.join("b.ckpt");
        other.save_checkpoint(&ckpt_a).unwrap();
        use rotom_meta::MetaTarget;
        let delta = vec![0.01f32; other.flat_params().len()];
        other.add_scaled(&delta, 1.0);
        other.save_checkpoint(&ckpt_b).unwrap();

        let plane = TaskPlane::new(Endpoint::Classify, name, model);
        let pool = RotomPool::new(1);
        let inputs = vec![rotom_text::tokenize("a fine movie")];
        let before = plane.score(&inputs, &pool);
        let info = plane.swap(&ckpt_b).unwrap();
        assert_eq!(info.generation, 1);
        assert!(info.param_generation > before.param_generation);
        let after = plane.score(&inputs, &pool);
        assert_ne!(before.scores, after.scores, "weights actually changed");
        // Swapping back restores the original scores bit-exactly.
        plane.swap(&ckpt_a).unwrap();
        assert_eq!(plane.score(&inputs, &pool).scores, before.scores);
        let _ = std::fs::remove_file(ckpt_a);
        let _ = std::fs::remove_file(ckpt_b);
    }

    #[test]
    fn swap_rejects_mismatched_checkpoint() {
        let cfg = demo_model_config();
        let (model, name) = demo_model(TaskKind::TextClassification, &cfg, 1);
        let plane = TaskPlane::new(Endpoint::Classify, name, model);
        let dir = std::env::temp_dir().join("rotom_serve_plane_badswap");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.ckpt");
        std::fs::write(&bad, "not a checkpoint\n").unwrap();
        assert!(plane.swap(&bad).is_err());
        let (gen, _) = plane.generations();
        assert_eq!(gen, 0, "failed swap must not bump the generation");
        let _ = std::fs::remove_file(bad);
    }
}
