//! Minimal blocking HTTP/1.1 client for the tests and the serving
//! benchmark. Keep-alive aware: one [`Client`] holds one TCP connection
//! and can issue many requests over it (including pipelined bursts via
//! [`Client::pipeline`]).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: String,
    /// Whether the server asked to close the connection.
    pub close: bool,
    /// The server's `Retry-After` hint in seconds, when present (shed
    /// responses carry one).
    pub retry_after_secs: Option<u32>,
}

/// One keep-alive connection to the server.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connect to `addr` with a generous read timeout (requests block on
    /// model scoring).
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issue one request and read one response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        self.stream.write_all(&request_bytes(method, path, body))?;
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, Some(body))
    }

    /// Write `n` identical requests back-to-back, then read `n` responses —
    /// exercises the server's pipelining path.
    pub fn pipeline(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        n: usize,
    ) -> std::io::Result<Vec<Response>> {
        let bytes = request_bytes(method, path, body);
        let mut all = Vec::with_capacity(bytes.len() * n);
        for _ in 0..n {
            all.extend_from_slice(&bytes);
        }
        self.stream.write_all(&all)?;
        (0..n).map(|_| self.read_response()).collect()
    }

    /// Read one response off the connection (headers + Content-Length body).
    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut chunk = [0u8; 8 * 1024];
        loop {
            if let Some(resp) = try_parse_response(&mut self.buf)? {
                return Ok(resp);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Serialize one request. `body` implies `POST`-style Content-Length.
fn request_bytes(method: &str, path: &str, body: Option<&str>) -> Vec<u8> {
    let body = body.unwrap_or("");
    format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Try to parse one complete response from the front of `buf`, draining the
/// consumed bytes on success.
fn try_parse_response(buf: &mut Vec<u8>) -> std::io::Result<Option<Response>> {
    let head_end = match buf.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(i) => i + 4,
        None => return Ok(None),
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    let mut close = false;
    let mut retry_after_secs = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
            })?;
        } else if name == "connection" {
            close = value.eq_ignore_ascii_case("close");
        } else if name == "retry-after" {
            retry_after_secs = value.parse().ok();
        }
    }
    if buf.len() < head_end + content_length {
        return Ok(None);
    }
    let body = String::from_utf8_lossy(&buf[head_end..head_end + content_length]).into_owned();
    buf.drain(..head_end + content_length);
    Ok(Some(Response {
        status,
        body,
        close,
        retry_after_secs,
    }))
}

/// Opt-in bounded retry for shed (`503 Retry-After`) responses and torn
/// connections. The chaos suite and `servebench --overload` use this; the
/// plain [`Client`] methods never retry.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retry at most this many times (0 = behave like a plain request).
    pub max_retries: u32,
    /// Cap on honored back-off — the server's `Retry-After` hint is in
    /// whole seconds, far too coarse for tests, so the policy clamps it.
    pub max_backoff: Duration,
    /// Seed for deterministic back-off jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            max_backoff: Duration::from_millis(50),
            seed: 0x5eed,
        }
    }
}

/// POST with bounded, jittered retry: honors the server's `Retry-After`
/// hint (clamped to `policy.max_backoff`) on `503`, and reconnects on
/// connection errors (refused mid-restart, torn mid-response write). Each
/// attempt uses a fresh connection when the previous one is unusable.
/// Returns the first non-503 response, the final 503 once retries are
/// exhausted, or the final connection error.
pub fn post_with_retry(
    addr: SocketAddr,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<Response> {
    let mut rng_state = policy.seed | 1;
    let mut client: Option<Client> = None;
    let mut attempt = 0u32;
    loop {
        let result = match &mut client {
            Some(c) => c.post(path, body),
            None => match Client::connect(addr) {
                Ok(mut c) => {
                    let r = c.post(path, body);
                    client = Some(c);
                    r
                }
                Err(e) => Err(e),
            },
        };
        match result {
            Ok(resp) if resp.status == 503 && attempt < policy.max_retries => {
                let hinted = resp
                    .retry_after_secs
                    .map(|s| Duration::from_secs(u64::from(s)))
                    .unwrap_or(policy.max_backoff);
                sleep_jittered(hinted.min(policy.max_backoff), &mut rng_state);
                if resp.close {
                    client = None;
                }
            }
            Ok(resp) => return Ok(resp),
            Err(e) if attempt < policy.max_retries => {
                let _ = e;
                client = None;
                sleep_jittered(policy.max_backoff, &mut rng_state);
            }
            Err(e) => return Err(e),
        }
        attempt += 1;
    }
}

/// Sleep a uniformly jittered duration in `[backoff/2, backoff]` — full
/// synchronization of retries is exactly what an overloaded server does
/// not need.
fn sleep_jittered(backoff: Duration, rng_state: &mut u64) {
    let half_us = (backoff.as_micros() as u64) / 2;
    let jitter_us = if half_us == 0 {
        0
    } else {
        rotom_rng::splitmix64(rng_state) % (half_us + 1)
    };
    std::thread::sleep(Duration::from_micros(half_us + jitter_us));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_body() {
        let mut buf =
            b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\nconnection: keep-alive\r\n\r\n{}extra"
                .to_vec();
        let resp = try_parse_response(&mut buf).unwrap().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{}");
        assert!(!resp.close);
        assert_eq!(buf, b"extra", "trailing bytes left for the next response");
    }

    #[test]
    fn parses_retry_after_hint() {
        let mut buf =
            b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 0\r\nconnection: close\r\nretry-after: 3\r\n\r\n"
                .to_vec();
        let resp = try_parse_response(&mut buf).unwrap().unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after_secs, Some(3));
        assert!(resp.close);
    }

    #[test]
    fn incomplete_response_returns_none() {
        let mut buf = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nshort".to_vec();
        assert!(try_parse_response(&mut buf).unwrap().is_none());
        let before = buf.clone();
        assert!(try_parse_response(&mut buf).unwrap().is_none());
        assert_eq!(buf, before, "nothing consumed until complete");
    }
}
