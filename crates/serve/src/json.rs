//! Minimal recursive JSON for the serving plane's request/response bodies.
//!
//! The workspace carries no serde (offline policy), and the flat-object
//! parser in `rotom_nn::telemetry` cannot represent the nested arrays a
//! scoring request carries (`{"inputs": [["tok", …], …]}`), so this module
//! implements the small recursive subset the server needs. Two properties
//! matter more than generality:
//!
//! * **Total on untrusted input** — the parser never panics and bounds
//!   recursion at [`MAX_DEPTH`]; byte volume is already bounded upstream by
//!   the HTTP body cap.
//! * **Bit-exact number round-trips** — numbers are kept as their *raw
//!   source text* ([`Json::Num`]) and parsed to `f32`/`f64` only on demand.
//!   Scores are serialized with Rust's shortest-round-trip float formatting
//!   and re-parsed directly as `f32`, so a score that crosses the wire
//!   equals the in-process score bit for bit — the property the serving
//!   equivalence suite pins.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number parsed as `f32` directly from its source text (no `f64`
    /// intermediate, so shortest-repr `f32` text round-trips exactly).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `u64` (rejects signs, fractions, exponents).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (surrounding whitespace allowed, trailing
/// bytes rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(text, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes after document at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(s: &str, pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    let bytes = s.as_bytes();
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(s, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' after key {key:?}"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(s, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(s, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(s, pos)?)),
        Some(b'n') if s[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(b't') if s[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if s[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let raw = &s[start..*pos];
            // Validate through f64 so arbitrary sign/dot soup is rejected,
            // but *store* the raw text (see module docs).
            if raw.is_empty() || raw.parse::<f64>().is_err() {
                return Err(format!("invalid value at offset {start}"));
            }
            Ok(Json::Num(raw.to_string()))
        }
        None => Err("unexpected end of document".to_string()),
    }
}

/// Parse a JSON string literal starting at `*pos` (must be a `"`).
fn parse_string(s: &str, pos: &mut usize) -> Result<String, String> {
    let bytes = s.as_bytes();
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = s[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((j, 'u')) => {
                    let hex = s
                        .get(*pos + j + 1..*pos + j + 5)
                        .ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                    // Surrogate pairs are not needed for the server's ASCII
                    // payloads; lone surrogates are rejected by from_u32.
                    out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c if (c as u32) < 0x20 => {
                return Err("raw control character in string".to_string());
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

/// Render a JSON string literal (quoted, escaped).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Append an `f32` in shortest-round-trip form (`{:?}`), the encoding whose
/// direct re-parse as `f32` is bit-identical. Non-finite values become
/// `null` (JSON has no NaN/Inf) — scoring outputs are softmax probabilities,
/// so this is a never-taken guard, not a lossy path.
pub fn push_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Render a score matrix as a JSON array of arrays of `f32`.
pub fn render_scores(scores: &[Vec<f32>]) -> String {
    let mut out = String::with_capacity(16 * scores.len());
    out.push('[');
    for (i, row) in scores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, &v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f32(&mut out, v);
        }
        out.push(']');
    }
    out.push(']');
    out
}

/// Parse a score matrix rendered by [`render_scores`] back into `f32` rows
/// (each number parsed directly as `f32`; used by tests and benchmarks to
/// assert wire round-trips are bit-identical).
pub fn parse_scores(value: &Json) -> Result<Vec<Vec<f32>>, String> {
    let rows = value.as_arr().ok_or("scores must be an array")?;
    rows.iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| "score row must be an array".to_string())?
                .iter()
                .map(|v| {
                    v.as_f32()
                        .ok_or_else(|| "score must be a number".to_string())
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_request_shape() {
        let doc = parse(r#"{"inputs": [["a", "b"], ["c"]], "n": 2}"#).unwrap();
        let inputs = doc.get("inputs").unwrap().as_arr().unwrap();
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0].as_arr().unwrap()[1].as_str(), Some("b"));
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\":1} extra",
            "\"unterminated",
            "nul",
            "+-3",
            "--1",
            "1.2.3",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "a \"quoted\"\nline\twith \\ and ✓";
        let doc = parse(&quote(original)).unwrap();
        assert_eq!(doc.as_str(), Some(original));
    }

    #[test]
    fn f32_wire_roundtrip_is_bit_identical() {
        let rows = vec![
            vec![
                0.1f32,
                1.0 / 3.0,
                f32::MIN_POSITIVE,
                1e-40, /* subnormal */
            ],
            vec![0.999_999_94f32, 2.718_281_8],
        ];
        let text = render_scores(&rows);
        let parsed = parse_scores(&parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.len(), rows.len());
        for (a, b) in rows.iter().zip(&parsed) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn numbers_keep_raw_text() {
        let doc = parse("[1e3, -0.5, 7]").unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr[0], Json::Num("1e3".to_string()));
        assert_eq!(arr[1].as_f64(), Some(-0.5));
        assert_eq!(arr[2].as_u64(), Some(7));
        assert_eq!(arr[0].as_u64(), None, "u64 accessor stays strict");
    }
}
