//! Serving metrics: lock-free counters plus a log2-bucketed latency
//! histogram, rendered as the `/metrics` JSON document and mirrored into
//! the telemetry plane (`serve` records) when `ROTOM_TELEMETRY` is on.
//!
//! Everything is `AtomicU64` with relaxed ordering — the metrics are
//! monotone counters read for observability, not for synchronization, and
//! request handlers must never contend on a metrics lock.

use rotom_nn::telemetry::{self, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, with the last bucket open-ended
/// (≥ ~34 s — nothing a request should ever see).
const LATENCY_BUCKETS: usize = 26;

/// A log2-bucketed latency histogram over microseconds.
///
/// Quantiles reported from it are upper bucket bounds, so a reported p99
/// is conservative (never smaller than the true p99) and at worst 2× it —
/// the right trade for a histogram that costs one relaxed `fetch_add` per
/// sample and needs no locks or allocation.
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (63 - (us | 1).leading_zeros()) as usize;
        let idx = idx.min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            0
        } else {
            self.total_us.load(Ordering::Relaxed) / n
        }
    }

    /// Upper-bound estimate of quantile `q` (0 < q ≤ 1) in microseconds:
    /// the upper edge of the bucket holding the q-th sample. 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }
}

/// Counters for one scoring endpoint.
#[derive(Default)]
pub struct EndpointMetrics {
    /// Requests routed to the endpoint.
    pub requests: AtomicU64,
    /// Individual inputs scored (a batch of 8 counts 8).
    pub inputs: AtomicU64,
    /// End-to-end request latency (parse → response bytes queued).
    pub latency: LatencyHistogram,
}

/// Process-wide serving metrics, shared by every connection handler and the
/// batcher.
#[derive(Default)]
pub struct ServeMetrics {
    /// Per-endpoint request counters, indexed by `Endpoint` route order.
    pub endpoints: [EndpointMetrics; 3],
    /// Responses by status class.
    pub status_2xx: AtomicU64,
    pub status_4xx: AtomicU64,
    pub status_5xx: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests rejected by the HTTP parser (subset of 4xx/5xx).
    pub parse_errors: AtomicU64,
    /// Batches the batcher dispatched to `score_batch`.
    pub batches: AtomicU64,
    /// Jobs that rode those batches (batched_jobs / batches = mean fill).
    pub batched_jobs: AtomicU64,
    /// Total time jobs spent queued before their batch was dispatched.
    pub queue_wait_us: AtomicU64,
    /// Successful hot swaps across all planes.
    pub swaps: AtomicU64,
    /// Jobs currently queued in the batcher (gauge, stored not added).
    pub queue_depth: AtomicU64,
    /// Requests shed with 503 + Retry-After: queue full, predicted wait
    /// over deadline, deadline expired in queue, draining/shutdown, or the
    /// connection cap.
    pub shed_total: AtomicU64,
    /// Times the watchdog respawned a dead or wedged batcher thread.
    pub batcher_respawns: AtomicU64,
    /// Drains that hit their deadline with jobs still queued (those jobs
    /// were failed, not completed).
    pub drain_deadline_exceeded: AtomicU64,
    /// Connections refused at accept because `--max-conns` was reached.
    pub conns_rejected: AtomicU64,
    /// Transient accept-loop errors survived via backoff.
    pub accept_errors: AtomicU64,
}

impl ServeMetrics {
    /// Count a response status.
    pub fn record_status(&self, status: u16) {
        let ctr = match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the `/metrics` JSON document. `planes` supplies per-endpoint
    /// state as `(endpoint_name, quant_tier_label, Option<(hits, misses,
    /// evictions, entries)>)`.
    pub fn render_json(&self, planes: &[(&str, &str, Option<(u64, u64, u64, usize)>)]) -> String {
        use rotom_nn::kernels::profile;
        let mut out = String::with_capacity(1024);
        out.push_str("{\"endpoints\":{");
        for (i, (name, quant, cache)) in planes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let m = &self.endpoints[i];
            out.push_str(&format!(
                "\"{}\":{{\"requests\":{},\"inputs\":{},\"quant\":\"{}\",\"latency_us\":{{\"mean\":{},\"p50\":{},\"p99\":{}}}",
                name,
                m.requests.load(Ordering::Relaxed),
                m.inputs.load(Ordering::Relaxed),
                quant,
                m.latency.mean_us(),
                m.latency.quantile_us(0.5),
                m.latency.quantile_us(0.99),
            ));
            match cache {
                Some((hits, misses, evictions, entries)) => out.push_str(&format!(
                    ",\"cache\":{{\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions},\"entries\":{entries}}}}}"
                )),
                None => out.push_str(",\"cache\":null}"),
            }
        }
        out.push_str(&format!(
            "}},\"status\":{{\"2xx\":{},\"4xx\":{},\"5xx\":{}}},\"connections\":{},\"conns_rejected\":{},\"accept_errors\":{},\"parse_errors\":{},\"batcher\":{{\"batches\":{},\"jobs\":{},\"queue_wait_us\":{},\"queue_depth\":{},\"shed_total\":{},\"batcher_respawns\":{},\"drain_deadline_exceeded\":{}}},\"swaps\":{},\"gemm\":{{\"quant_i8_calls\":{},\"fma\":{},\"quant_simd\":{}}}}}",
            self.status_2xx.load(Ordering::Relaxed),
            self.status_4xx.load(Ordering::Relaxed),
            self.status_5xx.load(Ordering::Relaxed),
            self.connections.load(Ordering::Relaxed),
            self.conns_rejected.load(Ordering::Relaxed),
            self.accept_errors.load(Ordering::Relaxed),
            self.parse_errors.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
            self.batched_jobs.load(Ordering::Relaxed),
            self.queue_wait_us.load(Ordering::Relaxed),
            self.queue_depth.load(Ordering::Relaxed),
            self.shed_total.load(Ordering::Relaxed),
            self.batcher_respawns.load(Ordering::Relaxed),
            self.drain_deadline_exceeded.load(Ordering::Relaxed),
            self.swaps.load(Ordering::Relaxed),
            profile::quant_i8_count(),
            profile::fma_active(),
            profile::quant_simd_active(),
        ));
        out
    }

    /// Mirror the headline counters into the telemetry plane as one `serve`
    /// record. No-op when telemetry is disabled.
    pub fn emit_telemetry(&self) {
        if !telemetry::enabled() {
            return;
        }
        let requests: u64 = self
            .endpoints
            .iter()
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum();
        telemetry::emit(
            "serve",
            "serve.requests",
            &[
                ("requests", Value::U64(requests)),
                (
                    "status_2xx",
                    Value::U64(self.status_2xx.load(Ordering::Relaxed)),
                ),
                (
                    "status_4xx",
                    Value::U64(self.status_4xx.load(Ordering::Relaxed)),
                ),
                (
                    "status_5xx",
                    Value::U64(self.status_5xx.load(Ordering::Relaxed)),
                ),
                ("batches", Value::U64(self.batches.load(Ordering::Relaxed))),
                (
                    "batched_jobs",
                    Value::U64(self.batched_jobs.load(Ordering::Relaxed)),
                ),
                (
                    "shed_total",
                    Value::U64(self.shed_total.load(Ordering::Relaxed)),
                ),
                (
                    "batcher_respawns",
                    Value::U64(self.batcher_respawns.load(Ordering::Relaxed)),
                ),
                ("swaps", Value::U64(self.swaps.load(Ordering::Relaxed))),
                (
                    "quant_i8_calls",
                    Value::U64(rotom_nn::kernels::profile::quant_i8_count()),
                ),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::default();
        for us in [3u64, 5, 9, 17, 33, 65, 129, 257, 513, 1025] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        // The 5th sample (33µs) lives in [32,64) → reported bound 64.
        assert_eq!(p50, 64);
        // The 10th sample (1025µs) lives in [1024,2048) → bound 2048.
        assert_eq!(p99, 2048);
        assert!(p50 <= p99);
        assert!(h.mean_us() >= 3 && h.mean_us() <= 1025);
    }

    #[test]
    fn histogram_handles_zero_and_huge_samples() {
        let h = LatencyHistogram::default();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(1.0) >= h.quantile_us(0.01));
    }

    #[test]
    fn metrics_render_is_valid_json() {
        let m = ServeMetrics::default();
        m.endpoints[0].requests.fetch_add(2, Ordering::Relaxed);
        m.record_status(200);
        m.record_status(404);
        m.record_status(500);
        let doc = m.render_json(&[
            ("match", "i8", Some((1, 2, 3, 4))),
            ("clean", "f32", None),
            ("classify", "f32", None),
        ]);
        let parsed = crate::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            parsed
                .get("endpoints")
                .and_then(|e| e.get("match"))
                .and_then(|m| m.get("requests"))
                .and_then(|r| r.as_u64()),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("endpoints")
                .and_then(|e| e.get("match"))
                .and_then(|m| m.get("cache"))
                .and_then(|c| c.get("evictions"))
                .and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("status")
                .and_then(|s| s.get("4xx"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("endpoints")
                .and_then(|e| e.get("match"))
                .and_then(|m| m.get("quant"))
                .and_then(|q| q.as_str()),
            Some("i8")
        );
        assert!(
            parsed
                .get("gemm")
                .and_then(|g| g.get("quant_i8_calls"))
                .and_then(|v| v.as_u64())
                .is_some(),
            "gemm dispatch-tier counters present"
        );
    }

    #[test]
    fn metrics_render_carries_robustness_counters() {
        let m = ServeMetrics::default();
        m.queue_depth.store(5, Ordering::Relaxed);
        m.shed_total.fetch_add(3, Ordering::Relaxed);
        m.batcher_respawns.fetch_add(1, Ordering::Relaxed);
        m.drain_deadline_exceeded.fetch_add(2, Ordering::Relaxed);
        m.conns_rejected.fetch_add(4, Ordering::Relaxed);
        let doc = m.render_json(&[
            ("match", "f32", None),
            ("clean", "f32", None),
            ("classify", "f32", None),
        ]);
        let parsed = crate::json::parse(&doc).expect("valid JSON");
        let batcher = parsed.get("batcher").expect("batcher section");
        for (key, want) in [
            ("queue_depth", 5),
            ("shed_total", 3),
            ("batcher_respawns", 1),
            ("drain_deadline_exceeded", 2),
        ] {
            assert_eq!(
                batcher.get(key).and_then(|v| v.as_u64()),
                Some(want),
                "batcher.{key}"
            );
        }
        assert_eq!(
            parsed.get("conns_rejected").and_then(|v| v.as_u64()),
            Some(4)
        );
    }
}
