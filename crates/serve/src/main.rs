//! `rotom-serve` — boot the model server from the command line.
//!
//! ```text
//! cargo run --release --bin rotom-serve -- --addr 127.0.0.1:8080
//! curl -s localhost:8080/healthz
//! curl -s localhost:8080/match -d '{"inputs": ["title acme phone COL price VAL 99"]}'
//! ```
//!
//! On Unix, `SIGINT`/`SIGTERM` trigger a graceful drain: the server stops
//! accepting, completes in-flight and queued jobs under `--drain-ms`, fails
//! stragglers only at the deadline, then exits.

use rotom_serve::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: rotom-serve [--addr HOST:PORT] [--window-ms N] [--max-batch N]\n\
         \x20                  [--threads N] [--score-cache N] [--seed N] [--quant]\n\
         \x20                  [--max-queue N] [--deadline-ms N] [--drain-ms N] [--max-conns N]\n\
         \n\
         Serves POST /match, /clean, /classify; GET /healthz, /metrics;\n\
         POST /admin/swap {{\"endpoint\": ..., \"checkpoint\": ...}}.\n\
         --quant boots every plane on the i8 inference GEMM tier\n\
         (ROTOM_QUANT=i8 sets the same default process-wide).\n\
         \n\
         Overload protection: the batcher queue is capped at --max-queue\n\
         jobs (0 = unbounded) with a --deadline-ms admission/expiry budget\n\
         (0 = none); excess load is shed with 503 + Retry-After. At most\n\
         --max-conns connections are open at once (0 = uncapped). SIGINT/\n\
         SIGTERM drain gracefully for up to --drain-ms before exiting.\n\
         \n\
         defaults: --addr 127.0.0.1:8080 --window-ms 2 --max-batch 32\n\
         \x20         --threads {} --score-cache 4096 --seed 7\n\
         \x20         --max-queue 1024 --deadline-ms 10000 --drain-ms 5000 --max-conns 256",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    std::process::exit(2)
}

/// Async-signal-safe shutdown flag, set by the `SIGINT`/`SIGTERM` handler
/// and polled by the main loop.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

    // `std` exposes no signal API and the workspace is zero-dependency
    // (no `libc`/`signal-hook`), so bind the libc symbol directly. The
    // handler only stores an atomic flag — the only thing that is
    // async-signal-safe to do.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn handle(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Install the flag-setting handler for `SIGINT` and `SIGTERM`.
    pub fn install() {
        unsafe {
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn requested() -> bool {
        SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
    }
}

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:8080".into(),
        score_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        score_cache: 4096,
        ..ServerConfig::default()
    };
    let mut drain_timeout = Duration::from_millis(5000);
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--window-ms" => match value("--window-ms").parse::<u64>() {
                Ok(ms) => cfg.window = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--max-batch" => match value("--max-batch").parse() {
                Ok(n) => cfg.max_batch = n,
                Err(_) => usage(),
            },
            "--threads" => match value("--threads").parse() {
                Ok(n) => cfg.score_threads = n,
                Err(_) => usage(),
            },
            "--score-cache" => match value("--score-cache").parse() {
                Ok(n) => cfg.score_cache = n,
                Err(_) => usage(),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => usage(),
            },
            "--quant" => cfg.quant = true,
            "--max-queue" => match value("--max-queue").parse() {
                Ok(n) => cfg.max_queue = n,
                Err(_) => usage(),
            },
            "--deadline-ms" => match value("--deadline-ms").parse::<u64>() {
                Ok(ms) => cfg.deadline = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--drain-ms" => match value("--drain-ms").parse::<u64>() {
                Ok(ms) => drain_timeout = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--max-conns" => match value("--max-conns").parse() {
                Ok(n) => cfg.max_conns = n,
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rotom-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("rotom-serve listening on http://{}", server.local_addr());
    println!("  POST /match /clean /classify   {{\"inputs\": [\"text\", ...]}}");
    println!("  POST /admin/swap               {{\"endpoint\": ..., \"checkpoint\": ...}}");
    println!("  GET  /healthz /metrics");

    #[cfg(unix)]
    {
        sig::install();
        // Serve until signalled, then drain gracefully.
        while !sig::requested() {
            std::thread::sleep(Duration::from_millis(200));
        }
        eprintln!(
            "rotom-serve: shutdown signal received; draining (deadline {:?})",
            drain_timeout
        );
        let report = server.drain(drain_timeout);
        if report.completed {
            eprintln!("rotom-serve: drain complete");
        } else {
            eprintln!(
                "rotom-serve: drain deadline exceeded; {} queued job(s) failed",
                report.failed_jobs
            );
        }
    }

    #[cfg(not(unix))]
    {
        let _ = drain_timeout;
        // No signal plumbing off-Unix: serve until killed.
        loop {
            std::thread::park();
        }
    }
}
