//! `rotom-serve` — boot the model server from the command line.
//!
//! ```text
//! cargo run --release --bin rotom-serve -- --addr 127.0.0.1:8080
//! curl -s localhost:8080/healthz
//! curl -s localhost:8080/match -d '{"inputs": ["title acme phone COL price VAL 99"]}'
//! ```

use rotom_serve::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: rotom-serve [--addr HOST:PORT] [--window-ms N] [--max-batch N]\n\
         \x20                  [--threads N] [--score-cache N] [--seed N] [--quant]\n\
         \n\
         Serves POST /match, /clean, /classify; GET /healthz, /metrics;\n\
         POST /admin/swap {{\"endpoint\": ..., \"checkpoint\": ...}}.\n\
         --quant boots every plane on the i8 inference GEMM tier\n\
         (ROTOM_QUANT=i8 sets the same default process-wide).\n\
         \n\
         defaults: --addr 127.0.0.1:8080 --window-ms 2 --max-batch 32\n\
         \x20         --threads {} --score-cache 4096 --seed 7",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:8080".into(),
        score_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        score_cache: 4096,
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--window-ms" => match value("--window-ms").parse::<u64>() {
                Ok(ms) => cfg.window = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--max-batch" => match value("--max-batch").parse() {
                Ok(n) => cfg.max_batch = n,
                Err(_) => usage(),
            },
            "--threads" => match value("--threads").parse() {
                Ok(n) => cfg.score_threads = n,
                Err(_) => usage(),
            },
            "--score-cache" => match value("--score-cache").parse() {
                Ok(n) => cfg.score_cache = n,
                Err(_) => usage(),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => usage(),
            },
            "--quant" => cfg.quant = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rotom-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("rotom-serve listening on http://{}", server.local_addr());
    println!("  POST /match /clean /classify   {{\"inputs\": [\"text\", ...]}}");
    println!("  POST /admin/swap               {{\"endpoint\": ..., \"checkpoint\": ...}}");
    println!("  GET  /healthz /metrics");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
