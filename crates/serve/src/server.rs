//! The HTTP server: accept loop, connection handling, routing.
//!
//! Thread-per-connection over `std::net::TcpListener` — the workloads this
//! serves are model-bound, not connection-bound, so the simple topology is
//! the right one. Request *scoring* is still batched: handlers submit jobs
//! to the shared [`Batcher`] and block on the reply, so a burst of
//! concurrent connections rides one `score_batch` pass per window.
//!
//! ## Routes
//!
//! | Route | Method | Body |
//! |---|---|---|
//! | `/healthz` | GET | — |
//! | `/metrics` | GET | — |
//! | `/match`, `/clean`, `/classify` | POST | `{"inputs": ["text", ["tok", ...], ...]}` |
//! | `/admin/swap` | POST | `{"endpoint": "match", "checkpoint": "path"}` |
//!
//! ## Error taxonomy
//!
//! Parse-level failures map through [`HttpError`]: 400 malformed syntax,
//! 408 idle timeout mid-request, 411 missing Content-Length, 413 oversized
//! body, 431 oversized head, 501 chunked transfer-encoding, 505 bad
//! version. Route-level failures: 404 unknown path, 405 wrong method,
//! 400 malformed JSON body or wrong shape, 422 checkpoint rejected on swap,
//! 500 scoring failure. Every error body is JSON: `{"error": ..., "status": ...}`.

use crate::batcher::{endpoint_index, Batcher, BatcherConfig, DrainReport, JobError};
use crate::http::{self, Request};
use crate::json::{self, Json};
use crate::metrics::ServeMetrics;
use crate::plane::{demo_model, demo_model_config, Endpoint, TaskPlane};
use rotom_nn::faultpoint::{self, FaultKind};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Most inputs a single scoring request may carry; more is a 400 (split
/// the request) so one client cannot monopolize a batch window.
pub const MAX_INPUTS_PER_REQUEST: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Batching window.
    pub window: Duration,
    /// Max jobs per batch.
    pub max_batch: usize,
    /// Scoring pool width.
    pub score_threads: usize,
    /// Score-cache capacity per plane (0 = disabled).
    pub score_cache: usize,
    /// Seed for the demo models the planes boot with.
    pub seed: u64,
    /// Boot every plane on the quantized i8 inference tier (default f32).
    /// Per-plane overrides are available via [`TaskPlane::set_quant_mode`].
    pub quant: bool,
    /// Close connections idle longer than this between requests; a
    /// connection idle mid-request gets a 408 first.
    pub idle_timeout: Duration,
    /// Batcher queue depth cap; submissions beyond it are shed with 503 +
    /// `Retry-After` (0 = unbounded).
    pub max_queue: usize,
    /// Per-request deadline budget: shed at admission when the predicted
    /// queue wait exceeds it, expire jobs queued longer than it
    /// (zero = no deadline).
    pub deadline: Duration,
    /// Hard cap on concurrently open connections; excess accepts are
    /// answered 503 + `Retry-After` and closed (0 = uncapped).
    pub max_conns: usize,
    /// Watchdog: replace a batcher worker busy on one batch longer than
    /// this.
    pub wedge_timeout: Duration,
    /// Watchdog poll interval.
    pub watchdog_tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let batcher = BatcherConfig::default();
        Self {
            addr: "127.0.0.1:0".into(),
            window: Duration::from_millis(2),
            max_batch: 32,
            score_threads: 1,
            score_cache: 0,
            seed: 7,
            quant: false,
            idle_timeout: Duration::from_secs(30),
            max_queue: batcher.max_queue,
            deadline: batcher.deadline,
            max_conns: 256,
            wedge_timeout: batcher.wedge_timeout,
            watchdog_tick: batcher.watchdog_tick,
        }
    }
}

struct Inner {
    planes: Arc<[TaskPlane; 3]>,
    metrics: Arc<ServeMetrics>,
    batcher: Batcher,
    shutdown: AtomicBool,
    /// Drain mode: stop accepting and close idle keep-alive connections,
    /// but let in-flight and queued jobs complete (see [`Server::drain`]).
    draining: AtomicBool,
    idle_timeout: Duration,
    max_conns: usize,
    active_conns: AtomicU64,
}

/// Decrements `active_conns` when a connection handler exits (any path).
struct ConnGuard {
    inner: Arc<Inner>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.inner.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running server. Dropping it (or calling [`shutdown`](Server::shutdown))
/// stops the accept loop, fails queued jobs, and joins the accept thread.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Build planes (demo models for all three endpoints), spawn the
    /// batcher and the accept loop, and return once the listener is bound.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let model_cfg = demo_model_config();
        let planes = Endpoint::ALL.map(|e| {
            let (model, name) = demo_model(e.task_kind(), &model_cfg, cfg.seed);
            let plane = TaskPlane::new(e, name, model);
            if cfg.score_cache > 0 {
                plane.set_score_cache(cfg.score_cache);
            }
            if cfg.quant {
                plane.set_quant_mode(rotom_nn::QuantMode::I8);
            }
            plane
        });
        Self::start_with_planes(cfg, Arc::new(planes))
    }

    /// Like [`start`](Server::start), but serve caller-provided planes —
    /// tests use this to compare server responses against direct scoring on
    /// a bit-identical model.
    pub fn start_with_planes(
        cfg: ServerConfig,
        planes: Arc<[TaskPlane; 3]>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig {
                window: cfg.window,
                max_batch: cfg.max_batch,
                score_threads: cfg.score_threads,
                max_queue: cfg.max_queue,
                deadline: cfg.deadline,
                wedge_timeout: cfg.wedge_timeout,
                watchdog_tick: cfg.watchdog_tick,
            },
        );
        let inner = Arc::new(Inner {
            planes,
            metrics,
            batcher,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            idle_timeout: cfg.idle_timeout,
            max_conns: cfg.max_conns,
            active_conns: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_handle = std::thread::Builder::new()
            .name("rotom-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(Server {
            inner,
            local_addr,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving metrics (shared with handlers).
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.inner.metrics
    }

    /// The planes being served.
    pub fn planes(&self) -> &Arc<[TaskPlane; 3]> {
        &self.inner.planes
    }

    /// Stop accepting, fail queued jobs, join the accept thread. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stop_accepting();
    }

    /// Graceful drain: stop accepting new connections, shed new
    /// submissions, complete in-flight and queued jobs, and only after
    /// `timeout` fail the stragglers (counted in `drain_deadline_exceeded`).
    /// The server is shut down when this returns. Idempotent; a drain after
    /// [`shutdown`](Server::shutdown) (or vice versa) is a no-op.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return DrainReport {
                completed: true,
                failed_jobs: 0,
            };
        }
        if !self.inner.draining.swap(true, Ordering::SeqCst) {
            self.stop_accepting();
        }
        let report = self.inner.batcher.drain(timeout);
        // Only now flip shutdown: handlers blocked on batcher replies have
        // been answered, and the flag closes idle keep-alive connections.
        self.inner.shutdown.store(true, Ordering::SeqCst);
        report
    }

    /// Unblock the blocking `accept()` with a throwaway connection and join
    /// the accept thread.
    fn stop_accepting(&self) {
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Exponential backoff for transient `accept()` errors (EMFILE, ECONNABORTED,
/// resource pressure): 1ms doubling to a 500ms ceiling. The accept thread
/// sleeps this long and retries instead of dying — an accept loop that exits
/// on EMFILE turns a transient fd spike into a permanently deaf server.
fn accept_backoff(consecutive_errors: u32) -> Duration {
    let ms = 1u64 << consecutive_errors.min(10).saturating_sub(1);
    Duration::from_millis(ms.min(500))
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let mut consecutive_errors = 0u32;
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                consecutive_errors = 0;
                if inner.shutdown.load(Ordering::SeqCst) || inner.draining.load(Ordering::SeqCst) {
                    return;
                }
                if inner.max_conns > 0
                    && inner.active_conns.load(Ordering::SeqCst) >= inner.max_conns as u64
                {
                    // Over the connection cap: answer 503 inline (no handler
                    // thread) and close. Cheap enough to do on the accept
                    // thread, and the client gets a signal instead of a RST.
                    inner.metrics.conns_rejected.fetch_add(1, Ordering::Relaxed);
                    inner.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                    inner.metrics.record_status(503);
                    let body = b"{\"error\":\"connection limit reached\",\"status\":503}";
                    let bytes = http::response_bytes_with(
                        503,
                        "Service Unavailable",
                        "application/json",
                        body,
                        false,
                        &[("retry-after", "1".to_string())],
                    );
                    let _ = stream.write_all(&bytes);
                    continue;
                }
                inner.metrics.connections.fetch_add(1, Ordering::Relaxed);
                inner.active_conns.fetch_add(1, Ordering::SeqCst);
                let guard = ConnGuard {
                    inner: Arc::clone(&inner),
                };
                let conn_inner = Arc::clone(&inner);
                // If the spawn itself fails, dropping the unsent closure
                // drops the guard, releasing the slot.
                let _ = std::thread::Builder::new()
                    .name("rotom-serve-conn".into())
                    .spawn(move || {
                        let _guard = guard;
                        handle_connection(stream, conn_inner)
                    });
            }
            Err(_)
                if inner.shutdown.load(Ordering::SeqCst)
                    || inner.draining.load(Ordering::SeqCst) =>
            {
                return
            }
            Err(e) => {
                consecutive_errors += 1;
                inner.metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                rotom_nn::telemetry::counter("serve.accept_errors", 1);
                eprintln!(
                    "rotom-serve: accept error ({e}); retrying after {:?}",
                    accept_backoff(consecutive_errors)
                );
                std::thread::sleep(accept_backoff(consecutive_errors));
            }
        }
    }
}

/// Read tick: short enough that shutdown and idle checks stay responsive,
/// long enough that the poll loop is cheap.
const READ_TICK: Duration = Duration::from_millis(100);

fn handle_connection(stream: TcpStream, inner: Arc<Inner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8 * 1024];
    let mut last_activity = Instant::now();
    loop {
        // Serve every complete pipelined request already buffered.
        loop {
            match http::parse_request(&buf) {
                Ok(Some((req, consumed))) => {
                    buf.drain(..consumed);
                    last_activity = Instant::now();
                    let keep_alive = !req.wants_close();
                    let response = route(&req, &inner);
                    let close = !keep_alive
                        || inner.shutdown.load(Ordering::SeqCst)
                        || inner.draining.load(Ordering::SeqCst);
                    let bytes = finalize(response, &inner, close);
                    if faultpoint::fire_global(FaultKind::TornWrite).is_some() {
                        // Chaos: sever the connection mid-response — the
                        // client sees a short read and must treat the
                        // request as failed (and may retry on a fresh
                        // connection).
                        let _ = stream.write_all(&bytes[..bytes.len() / 2]);
                        return;
                    }
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if close {
                        return;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    inner.metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
                    inner.metrics.record_status(err.status().0);
                    let _ = stream.write_all(&http::error_response(&err));
                    return;
                }
            }
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if inner.draining.load(Ordering::SeqCst) && buf.is_empty() {
            return; // drain closes idle keep-alive connections
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_activity.elapsed() >= inner.idle_timeout {
                    if !buf.is_empty() {
                        // Mid-request stall: tell the peer before closing.
                        let body = b"{\"error\":\"request timed out\",\"status\":408}";
                        let bytes = http::response_bytes(
                            408,
                            "Request Timeout",
                            "application/json",
                            body,
                            false,
                        );
                        inner.metrics.record_status(408);
                        let _ = stream.write_all(&bytes);
                    }
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// A routed response before status accounting.
struct Routed {
    status: u16,
    reason: &'static str,
    body: String,
    /// `Retry-After` seconds for shed (503) responses.
    retry_after: Option<u32>,
}

impl Routed {
    fn ok(body: String) -> Self {
        Self {
            status: 200,
            reason: "OK",
            body,
            retry_after: None,
        }
    }

    fn error(status: u16, reason: &'static str, detail: &str) -> Self {
        Self {
            status,
            reason,
            body: format!("{{\"error\":{},\"status\":{status}}}", json::quote(detail)),
            retry_after: None,
        }
    }

    /// Map a batcher refusal/failure: sheds render as `503` with a
    /// `Retry-After` hint, scoring panics as `500`.
    fn from_job_error(err: &JobError) -> Self {
        let status = err.status();
        let reason = if status == 503 {
            "Service Unavailable"
        } else {
            "Internal Server Error"
        };
        Self {
            retry_after: err.retry_after_secs(),
            ..Self::error(status, reason, &err.to_string())
        }
    }
}

fn finalize(routed: Routed, inner: &Inner, close: bool) -> Vec<u8> {
    inner.metrics.record_status(routed.status);
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let Some(secs) = routed.retry_after {
        extra.push(("retry-after", secs.to_string()));
    }
    http::response_bytes_with(
        routed.status,
        routed.reason,
        "application/json",
        routed.body.as_bytes(),
        !close,
        &extra,
    )
}

fn route(req: &Request, inner: &Inner) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Routed::ok("{\"status\":\"ok\"}".into()),
        ("GET", "/metrics") => {
            let stats: Vec<(&str, &str, Option<(u64, u64, u64, usize)>)> = inner
                .planes
                .iter()
                .map(|p| (p.endpoint().name(), p.quant_mode().label(), p.cache_stats()))
                .collect();
            inner.metrics.emit_telemetry();
            Routed::ok(inner.metrics.render_json(&stats))
        }
        ("POST", "/admin/swap") => handle_swap(req, inner),
        (method, path) => match Endpoint::ALL.iter().find(|e| e.path() == path) {
            Some(&endpoint) if method == "POST" => handle_score(req, inner, endpoint),
            Some(_) => Routed::error(405, "Method Not Allowed", "scoring endpoints take POST"),
            None if path == "/healthz" || path == "/metrics" => {
                Routed::error(405, "Method Not Allowed", "use GET")
            }
            None => Routed::error(404, "Not Found", "unknown route"),
        },
    }
}

fn handle_score(req: &Request, inner: &Inner, endpoint: Endpoint) -> Routed {
    let start = Instant::now();
    let idx = endpoint_index(endpoint);
    inner.metrics.endpoints[idx]
        .requests
        .fetch_add(1, Ordering::Relaxed);
    let inputs = match parse_inputs(&req.body) {
        Ok(inputs) => inputs,
        Err(detail) => return Routed::error(400, "Bad Request", &detail),
    };
    inner.metrics.endpoints[idx]
        .inputs
        .fetch_add(inputs.len() as u64, Ordering::Relaxed);
    let rx = match inner.batcher.submit(endpoint, inputs) {
        Ok(rx) => rx,
        Err(err) => return Routed::from_job_error(&err),
    };
    let reply = match rx.recv() {
        Ok(reply) => reply,
        // Sender dropped without a reply: the worker died holding this job
        // (the watchdog respawns it, but this request is lost).
        Err(_) => return Routed::error(500, "Internal Server Error", "batcher unavailable"),
    };
    let result = match reply {
        Ok(result) => result,
        Err(err) => return Routed::from_job_error(&err),
    };
    let plane = &inner.planes[idx];
    let mut body = String::with_capacity(64 + result.scores.len() * 32);
    body.push_str("{\"model\":");
    body.push_str(&json::quote(plane.model_name()));
    body.push_str(",\"scores\":");
    body.push_str(&json::render_scores(&result.scores));
    body.push_str(&format!(
        ",\"generation\":{},\"param_generation\":{}}}",
        result.generation, result.param_generation
    ));
    inner.metrics.endpoints[idx]
        .latency
        .record_us(start.elapsed().as_micros() as u64);
    Routed::ok(body)
}

fn handle_swap(req: &Request, inner: &Inner) -> Routed {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Routed::error(400, "Bad Request", "body is not UTF-8"),
    };
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return Routed::error(400, "Bad Request", &format!("bad JSON: {e}")),
    };
    let endpoint = match doc.get("endpoint").and_then(Json::as_str) {
        Some(name) => match Endpoint::from_name(name) {
            Some(e) => e,
            None => return Routed::error(404, "Not Found", &format!("unknown endpoint: {name:?}")),
        },
        None => return Routed::error(400, "Bad Request", "missing \"endpoint\""),
    };
    let checkpoint = match doc.get("checkpoint").and_then(Json::as_str) {
        Some(p) => p,
        None => return Routed::error(400, "Bad Request", "missing \"checkpoint\""),
    };
    let plane = &inner.planes[endpoint_index(endpoint)];
    match plane.swap(checkpoint) {
        Ok(info) => {
            inner.metrics.swaps.fetch_add(1, Ordering::Relaxed);
            Routed::ok(format!(
                "{{\"endpoint\":{},\"generation\":{},\"param_generation\":{}}}",
                json::quote(endpoint.name()),
                info.generation,
                info.param_generation
            ))
        }
        Err(e) => Routed::error(
            422,
            "Unprocessable Entity",
            &format!("checkpoint rejected: {e}"),
        ),
    }
}

/// Parse a scoring request body: `{"inputs": [...]}` where each element is
/// a string (tokenized server-side) or an array of token strings (used
/// verbatim — what the equivalence tests send to sidestep tokenizer
/// drift).
fn parse_inputs(body: &[u8]) -> Result<Vec<Vec<String>>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let arr = doc
        .get("inputs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing \"inputs\" array".to_string())?;
    if arr.is_empty() {
        return Err("\"inputs\" must be non-empty".into());
    }
    if arr.len() > MAX_INPUTS_PER_REQUEST {
        return Err(format!(
            "too many inputs: {} > {MAX_INPUTS_PER_REQUEST}",
            arr.len()
        ));
    }
    arr.iter()
        .enumerate()
        .map(|(i, item)| match item {
            Json::Str(s) => Ok(rotom_text::tokenize(s)),
            Json::Arr(tokens) => tokens
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("inputs[{i}]: tokens must be strings"))
                })
                .collect(),
            _ => Err(format!("inputs[{i}]: expected string or token array")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_inputs_accepts_strings_and_token_arrays() {
        let got = parse_inputs(br#"{"inputs": ["Hello world", ["pre", "tokenized"]]}"#).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], rotom_text::tokenize("Hello world"));
        assert_eq!(got[1], vec!["pre".to_string(), "tokenized".to_string()]);
    }

    #[test]
    fn accept_backoff_grows_exponentially_and_caps() {
        assert_eq!(accept_backoff(1), Duration::from_millis(1));
        assert_eq!(accept_backoff(2), Duration::from_millis(2));
        assert_eq!(accept_backoff(5), Duration::from_millis(16));
        for n in 1..100 {
            assert!(
                accept_backoff(n + 1) >= accept_backoff(n),
                "backoff must be monotone at n={n}"
            );
            assert!(
                accept_backoff(n) <= Duration::from_millis(500),
                "backoff must stay capped at n={n}"
            );
        }
        assert_eq!(accept_backoff(100), Duration::from_millis(500));
    }

    #[test]
    fn job_errors_render_as_503_with_retry_after_except_panics() {
        let shed = Routed::from_job_error(&JobError::QueueFull {
            retry_after_secs: 3,
        });
        assert_eq!(shed.status, 503);
        assert_eq!(shed.retry_after, Some(3));
        assert!(shed.body.contains("queue full"));
        let drain = Routed::from_job_error(&JobError::Draining);
        assert_eq!(drain.status, 503);
        assert_eq!(drain.retry_after, Some(1));
        let panic = Routed::from_job_error(&JobError::ScorePanic);
        assert_eq!(panic.status, 500);
        assert_eq!(panic.retry_after, None);
    }

    #[test]
    fn parse_inputs_rejects_bad_shapes() {
        assert!(parse_inputs(b"not json").is_err());
        assert!(parse_inputs(br#"{"inputs": []}"#).is_err());
        assert!(parse_inputs(br#"{"inputs": [42]}"#).is_err());
        assert!(parse_inputs(br#"{"inputs": [[1, 2]]}"#).is_err());
        assert!(parse_inputs(br#"{"other": ["x"]}"#).is_err());
        let huge = format!(
            "{{\"inputs\": [{}]}}",
            vec!["\"x\""; MAX_INPUTS_PER_REQUEST + 1].join(",")
        );
        assert!(parse_inputs(huge.as_bytes()).is_err());
    }
}
