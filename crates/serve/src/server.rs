//! The HTTP server: accept loop, connection handling, routing.
//!
//! Thread-per-connection over `std::net::TcpListener` — the workloads this
//! serves are model-bound, not connection-bound, so the simple topology is
//! the right one. Request *scoring* is still batched: handlers submit jobs
//! to the shared [`Batcher`] and block on the reply, so a burst of
//! concurrent connections rides one `score_batch` pass per window.
//!
//! ## Routes
//!
//! | Route | Method | Body |
//! |---|---|---|
//! | `/healthz` | GET | — |
//! | `/metrics` | GET | — |
//! | `/match`, `/clean`, `/classify` | POST | `{"inputs": ["text", ["tok", ...], ...]}` |
//! | `/admin/swap` | POST | `{"endpoint": "match", "checkpoint": "path"}` |
//!
//! ## Error taxonomy
//!
//! Parse-level failures map through [`HttpError`]: 400 malformed syntax,
//! 408 idle timeout mid-request, 411 missing Content-Length, 413 oversized
//! body, 431 oversized head, 501 chunked transfer-encoding, 505 bad
//! version. Route-level failures: 404 unknown path, 405 wrong method,
//! 400 malformed JSON body or wrong shape, 422 checkpoint rejected on swap,
//! 500 scoring failure. Every error body is JSON: `{"error": ..., "status": ...}`.

use crate::batcher::{endpoint_index, Batcher, BatcherConfig};
use crate::http::{self, Request};
use crate::json::{self, Json};
use crate::metrics::ServeMetrics;
use crate::plane::{demo_model, demo_model_config, Endpoint, TaskPlane};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Most inputs a single scoring request may carry; more is a 400 (split
/// the request) so one client cannot monopolize a batch window.
pub const MAX_INPUTS_PER_REQUEST: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Batching window.
    pub window: Duration,
    /// Max jobs per batch.
    pub max_batch: usize,
    /// Scoring pool width.
    pub score_threads: usize,
    /// Score-cache capacity per plane (0 = disabled).
    pub score_cache: usize,
    /// Seed for the demo models the planes boot with.
    pub seed: u64,
    /// Boot every plane on the quantized i8 inference tier (default f32).
    /// Per-plane overrides are available via [`TaskPlane::set_quant_mode`].
    pub quant: bool,
    /// Close connections idle longer than this between requests; a
    /// connection idle mid-request gets a 408 first.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            window: Duration::from_millis(2),
            max_batch: 32,
            score_threads: 1,
            score_cache: 0,
            seed: 7,
            quant: false,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

struct Inner {
    planes: Arc<[TaskPlane; 3]>,
    metrics: Arc<ServeMetrics>,
    batcher: Batcher,
    shutdown: AtomicBool,
    idle_timeout: Duration,
}

/// A running server. Dropping it (or calling [`shutdown`](Server::shutdown))
/// stops the accept loop, fails queued jobs, and joins the accept thread.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Build planes (demo models for all three endpoints), spawn the
    /// batcher and the accept loop, and return once the listener is bound.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let model_cfg = demo_model_config();
        let planes = Endpoint::ALL.map(|e| {
            let (model, name) = demo_model(e.task_kind(), &model_cfg, cfg.seed);
            let plane = TaskPlane::new(e, name, model);
            if cfg.score_cache > 0 {
                plane.set_score_cache(cfg.score_cache);
            }
            if cfg.quant {
                plane.set_quant_mode(rotom_nn::QuantMode::I8);
            }
            plane
        });
        Self::start_with_planes(cfg, Arc::new(planes))
    }

    /// Like [`start`](Server::start), but serve caller-provided planes —
    /// tests use this to compare server responses against direct scoring on
    /// a bit-identical model.
    pub fn start_with_planes(
        cfg: ServerConfig,
        planes: Arc<[TaskPlane; 3]>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::default());
        let batcher = Batcher::spawn(
            Arc::clone(&planes),
            Arc::clone(&metrics),
            BatcherConfig {
                window: cfg.window,
                max_batch: cfg.max_batch,
                score_threads: cfg.score_threads,
            },
        );
        let inner = Arc::new(Inner {
            planes,
            metrics,
            batcher,
            shutdown: AtomicBool::new(false),
            idle_timeout: cfg.idle_timeout,
        });
        let accept_inner = Arc::clone(&inner);
        let accept_handle = std::thread::Builder::new()
            .name("rotom-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(Server {
            inner,
            local_addr,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving metrics (shared with handlers).
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.inner.metrics
    }

    /// The planes being served.
    pub fn planes(&self) -> &Arc<[TaskPlane; 3]> {
        &self.inner.planes
    }

    /// Stop accepting, fail queued jobs, join the accept thread. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                inner.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("rotom-serve-conn".into())
                    .spawn(move || handle_connection(stream, conn_inner));
            }
            Err(_) if inner.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        }
    }
}

/// Read tick: short enough that shutdown and idle checks stay responsive,
/// long enough that the poll loop is cheap.
const READ_TICK: Duration = Duration::from_millis(100);

fn handle_connection(stream: TcpStream, inner: Arc<Inner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8 * 1024];
    let mut last_activity = Instant::now();
    loop {
        // Serve every complete pipelined request already buffered.
        loop {
            match http::parse_request(&buf) {
                Ok(Some((req, consumed))) => {
                    buf.drain(..consumed);
                    last_activity = Instant::now();
                    let keep_alive = !req.wants_close();
                    let response = route(&req, &inner);
                    let close = !keep_alive || inner.shutdown.load(Ordering::SeqCst);
                    let bytes = finalize(response, &inner, close);
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                    if close {
                        return;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    inner.metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
                    inner.metrics.record_status(err.status().0);
                    let _ = stream.write_all(&http::error_response(&err));
                    return;
                }
            }
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_activity.elapsed() >= inner.idle_timeout {
                    if !buf.is_empty() {
                        // Mid-request stall: tell the peer before closing.
                        let body = b"{\"error\":\"request timed out\",\"status\":408}";
                        let bytes = http::response_bytes(
                            408,
                            "Request Timeout",
                            "application/json",
                            body,
                            false,
                        );
                        inner.metrics.record_status(408);
                        let _ = stream.write_all(&bytes);
                    }
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// A routed response before status accounting.
struct Routed {
    status: u16,
    reason: &'static str,
    body: String,
}

impl Routed {
    fn ok(body: String) -> Self {
        Self {
            status: 200,
            reason: "OK",
            body,
        }
    }

    fn error(status: u16, reason: &'static str, detail: &str) -> Self {
        Self {
            status,
            reason,
            body: format!("{{\"error\":{},\"status\":{status}}}", json::quote(detail)),
        }
    }
}

fn finalize(routed: Routed, inner: &Inner, close: bool) -> Vec<u8> {
    inner.metrics.record_status(routed.status);
    http::response_bytes(
        routed.status,
        routed.reason,
        "application/json",
        routed.body.as_bytes(),
        !close,
    )
}

fn route(req: &Request, inner: &Inner) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Routed::ok("{\"status\":\"ok\"}".into()),
        ("GET", "/metrics") => {
            let stats: Vec<(&str, &str, Option<(u64, u64, u64, usize)>)> = inner
                .planes
                .iter()
                .map(|p| (p.endpoint().name(), p.quant_mode().label(), p.cache_stats()))
                .collect();
            inner.metrics.emit_telemetry();
            Routed::ok(inner.metrics.render_json(&stats))
        }
        ("POST", "/admin/swap") => handle_swap(req, inner),
        (method, path) => match Endpoint::ALL.iter().find(|e| e.path() == path) {
            Some(&endpoint) if method == "POST" => handle_score(req, inner, endpoint),
            Some(_) => Routed::error(405, "Method Not Allowed", "scoring endpoints take POST"),
            None if path == "/healthz" || path == "/metrics" => {
                Routed::error(405, "Method Not Allowed", "use GET")
            }
            None => Routed::error(404, "Not Found", "unknown route"),
        },
    }
}

fn handle_score(req: &Request, inner: &Inner, endpoint: Endpoint) -> Routed {
    let start = Instant::now();
    let idx = endpoint_index(endpoint);
    inner.metrics.endpoints[idx]
        .requests
        .fetch_add(1, Ordering::Relaxed);
    let inputs = match parse_inputs(&req.body) {
        Ok(inputs) => inputs,
        Err(detail) => return Routed::error(400, "Bad Request", &detail),
    };
    inner.metrics.endpoints[idx]
        .inputs
        .fetch_add(inputs.len() as u64, Ordering::Relaxed);
    let rx = inner.batcher.submit(endpoint, inputs);
    let reply = match rx.recv() {
        Ok(reply) => reply,
        Err(_) => return Routed::error(500, "Internal Server Error", "batcher unavailable"),
    };
    let result = match reply {
        Ok(result) => result,
        Err(detail) => return Routed::error(500, "Internal Server Error", &detail),
    };
    let plane = &inner.planes[idx];
    let mut body = String::with_capacity(64 + result.scores.len() * 32);
    body.push_str("{\"model\":");
    body.push_str(&json::quote(plane.model_name()));
    body.push_str(",\"scores\":");
    body.push_str(&json::render_scores(&result.scores));
    body.push_str(&format!(
        ",\"generation\":{},\"param_generation\":{}}}",
        result.generation, result.param_generation
    ));
    inner.metrics.endpoints[idx]
        .latency
        .record_us(start.elapsed().as_micros() as u64);
    Routed::ok(body)
}

fn handle_swap(req: &Request, inner: &Inner) -> Routed {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Routed::error(400, "Bad Request", "body is not UTF-8"),
    };
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return Routed::error(400, "Bad Request", &format!("bad JSON: {e}")),
    };
    let endpoint = match doc.get("endpoint").and_then(Json::as_str) {
        Some(name) => match Endpoint::from_name(name) {
            Some(e) => e,
            None => return Routed::error(404, "Not Found", &format!("unknown endpoint: {name:?}")),
        },
        None => return Routed::error(400, "Bad Request", "missing \"endpoint\""),
    };
    let checkpoint = match doc.get("checkpoint").and_then(Json::as_str) {
        Some(p) => p,
        None => return Routed::error(400, "Bad Request", "missing \"checkpoint\""),
    };
    let plane = &inner.planes[endpoint_index(endpoint)];
    match plane.swap(checkpoint) {
        Ok(info) => {
            inner.metrics.swaps.fetch_add(1, Ordering::Relaxed);
            Routed::ok(format!(
                "{{\"endpoint\":{},\"generation\":{},\"param_generation\":{}}}",
                json::quote(endpoint.name()),
                info.generation,
                info.param_generation
            ))
        }
        Err(e) => Routed::error(
            422,
            "Unprocessable Entity",
            &format!("checkpoint rejected: {e}"),
        ),
    }
}

/// Parse a scoring request body: `{"inputs": [...]}` where each element is
/// a string (tokenized server-side) or an array of token strings (used
/// verbatim — what the equivalence tests send to sidestep tokenizer
/// drift).
fn parse_inputs(body: &[u8]) -> Result<Vec<Vec<String>>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let arr = doc
        .get("inputs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing \"inputs\" array".to_string())?;
    if arr.is_empty() {
        return Err("\"inputs\" must be non-empty".into());
    }
    if arr.len() > MAX_INPUTS_PER_REQUEST {
        return Err(format!(
            "too many inputs: {} > {MAX_INPUTS_PER_REQUEST}",
            arr.len()
        ));
    }
    arr.iter()
        .enumerate()
        .map(|(i, item)| match item {
            Json::Str(s) => Ok(rotom_text::tokenize(s)),
            Json::Arr(tokens) => tokens
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("inputs[{i}]: tokens must be strings"))
                })
                .collect(),
            _ => Err(format!("inputs[{i}]: expected string or token array")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_inputs_accepts_strings_and_token_arrays() {
        let got = parse_inputs(br#"{"inputs": ["Hello world", ["pre", "tokenized"]]}"#).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], rotom_text::tokenize("Hello world"));
        assert_eq!(got[1], vec!["pre".to_string(), "tokenized".to_string()]);
    }

    #[test]
    fn parse_inputs_rejects_bad_shapes() {
        assert!(parse_inputs(b"not json").is_err());
        assert!(parse_inputs(br#"{"inputs": []}"#).is_err());
        assert!(parse_inputs(br#"{"inputs": [42]}"#).is_err());
        assert!(parse_inputs(br#"{"inputs": [[1, 2]]}"#).is_err());
        assert!(parse_inputs(br#"{"other": ["x"]}"#).is_err());
        let huge = format!(
            "{{\"inputs\": [{}]}}",
            vec!["\"x\""; MAX_INPUTS_PER_REQUEST + 1].join(",")
        );
        assert!(parse_inputs(huge.as_bytes()).is_err());
    }
}
