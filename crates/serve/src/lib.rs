//! # rotom-serve — zero-dependency model serving over the inference plane
//!
//! A hand-rolled HTTP/1.1 server (`std::net::TcpListener`, no external
//! crates) that fronts the tape-free scoring path from `rotom`:
//!
//! * **Three scoring endpoints** — `POST /match`, `/clean`, `/classify` —
//!   one per Rotom task family, each backed by its own hot-swappable
//!   [`TaskPlane`](plane::TaskPlane).
//! * **Windowed batching** ([`batcher`]) — concurrent requests within a
//!   few-millisecond window ride one `score_batch` pass through the
//!   scoring pool instead of one forward each.
//! * **Hot swap** — `POST /admin/swap` loads a StateBag checkpoint into a
//!   live plane under its write lock; every response reports the plane
//!   generation and parameter fingerprint that produced it, and the score
//!   cache self-invalidates across swaps (see [`plane`]).
//! * **Observability** — `GET /healthz`, `GET /metrics` (JSON counters +
//!   log2-bucketed latency quantiles, mirrored into the `ROTOM_TELEMETRY`
//!   plane as `serve` records).
//! * **Overload protection** — bounded batcher queue with deadline-budget
//!   admission control (`503` + `Retry-After` sheds, never silent
//!   queueing), a hard connection cap, accept-loop error backoff, a
//!   watchdog that respawns a wedged or panic-dead batcher worker, and
//!   graceful drain shutdown ([`Server::drain`](server::Server::drain)) —
//!   chaos-tested via the serve-side `ROTOM_FAULT` faultpoints
//!   (`score_panic`, `slow_score`, `batcher_die`, `torn_write`,
//!   `queue_full`; see `rotom_nn::faultpoint`).
//!
//! The [`http`] parser is incremental and pipelining-aware, with a strict
//! error taxonomy (400/408/411/413/431/501/505) fuzzed by the
//! `http_props` test suite; [`json`] keeps `f32` scores bit-identical over
//! the wire by round-tripping shortest-form number text. [`client`] is the
//! matching minimal client used by the e2e tests and `servebench`.

pub mod batcher;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod plane;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, DrainReport, JobError, JobReply, JobResult};
pub use client::{post_with_retry, Client, Response, RetryPolicy};
pub use metrics::{LatencyHistogram, ServeMetrics};
pub use plane::{demo_model, demo_model_config, Endpoint, ScoredBatch, SwapInfo, TaskPlane};
pub use server::{Server, ServerConfig, MAX_INPUTS_PER_REQUEST};
