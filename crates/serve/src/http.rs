//! Hand-rolled incremental HTTP/1.1 request parsing and response writing.
//!
//! The serving plane is offline-built (no `hyper`, no `httparse`), so this
//! module implements the small slice of HTTP/1.1 the model server needs —
//! and implements it defensively, because the socket is the system's only
//! untrusted input:
//!
//! * **Incremental**: [`parse_request`] consumes a byte buffer that may hold
//!   a torn prefix, exactly one request, or several pipelined requests. It
//!   returns `Ok(None)` ("need more bytes") until a full request is
//!   available, then the parsed [`Request`] plus the number of bytes it
//!   consumed, so the connection loop can re-parse the remainder.
//! * **Total**: no input — truncated at any byte offset, oversized,
//!   malformed, or adversarial — may panic. Every failure maps to a typed
//!   [`HttpError`] carrying the 4xx/5xx status the connection should answer
//!   before closing (see the error taxonomy in DESIGN.md's "Serving plane").
//! * **Bounded**: the request line + header block is capped at
//!   [`MAX_HEAD_BYTES`], the header count at [`MAX_HEADERS`], and the body
//!   at [`MAX_BODY_BYTES`] — each enforced as early as the information is
//!   available, so a hostile peer cannot make the server buffer unbounded
//!   input.
//!
//! Unsupported-but-valid HTTP is rejected loudly rather than mis-handled:
//! `Transfer-Encoding: chunked` gets 501, non-1.x versions get 505.

use std::io::Write as _;

/// Cap on the request line + header block, in bytes (pre-body).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Cap on the declared `Content-Length` (and therefore on buffered bodies).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A fully parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names are lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (exactly `Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (lower-case name), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after the response.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Why a request could not be parsed. Each variant maps to the HTTP status
/// the connection answers before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or `Content-Length` (400).
    BadRequest(String),
    /// Request line + headers exceed [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`]
    /// (431).
    HeadersTooLarge,
    /// Declared `Content-Length` exceeds [`MAX_BODY_BYTES`] (413).
    BodyTooLarge,
    /// A method that carries a body arrived without `Content-Length` (411).
    LengthRequired,
    /// `Transfer-Encoding` other than identity — chunked bodies are not
    /// implemented (501).
    UnsupportedTransferEncoding,
    /// HTTP version other than 1.0/1.1 (505).
    UnsupportedVersion,
}

impl HttpError {
    /// `(status code, reason phrase)` for the error response.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::LengthRequired => (411, "Length Required"),
            HttpError::UnsupportedTransferEncoding => (501, "Not Implemented"),
            HttpError::UnsupportedVersion => (505, "HTTP Version Not Supported"),
        }
    }

    /// Human-readable detail carried in the error response body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::HeadersTooLarge => format!(
                "request line + headers exceed {MAX_HEAD_BYTES} bytes or {MAX_HEADERS} lines"
            ),
            HttpError::BodyTooLarge => {
                format!("declared content-length exceeds {MAX_BODY_BYTES} bytes")
            }
            HttpError::LengthRequired => "request with a body requires content-length".to_string(),
            HttpError::UnsupportedTransferEncoding => {
                "transfer-encoding is not supported; send content-length".to_string()
            }
            HttpError::UnsupportedVersion => "only HTTP/1.0 and HTTP/1.1 are supported".to_string(),
        }
    }
}

/// Find the end of the header block (`\r\n\r\n`), returning the offset just
/// past it.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Whether every byte is a valid RFC 7230 token char (method names).
fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Try to parse one request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — one full request; the caller should
///   drain `consumed` bytes and re-parse the remainder (pipelining).
/// * `Ok(None)` — the buffer holds a valid-so-far prefix; read more bytes.
/// * `Err(e)` — the prefix can never become a valid request; answer
///   `e.status()` and close.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_len) = head_end(buf) else {
        // No terminator yet: incomplete — unless the head is already over
        // budget, in which case more bytes can only make it worse.
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        // An early sanity check once the request line is complete: reject
        // junk (e.g. a TLS handshake or random bytes) without waiting for a
        // header terminator that may never come.
        if let Some(line_end) = buf.windows(2).position(|w| w == b"\r\n") {
            parse_request_line(&buf[..line_end])?;
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(HttpError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len - 4])
        .map_err(|_| HttpError::BadRequest("non-UTF-8 bytes in request head".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, path) = parse_request_line(request_line.as_bytes())?;

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        // A bare CR inside the head would have split differently; any line
        // here is `name: value`.
        let Some(colon) = line.find(':') else {
            return Err(HttpError::BadRequest(format!(
                "header line without ':': {line:?}"
            )));
        };
        let name = line[..colon].trim();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(HttpError::BadRequest(format!(
                "invalid header name in {line:?}"
            )));
        }
        headers.push((
            name.to_ascii_lowercase(),
            line[colon + 1..].trim().to_string(),
        ));
    }

    if let Some((_, te)) = headers.iter().find(|(n, _)| n == "transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
    }

    // Content-Length: strict ASCII digits; repeated headers must agree.
    let mut content_length: Option<usize> = None;
    for (_, v) in headers.iter().filter(|(n, _)| n == "content-length") {
        let parsed: usize = if !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit()) {
            v.parse()
                .map_err(|_| HttpError::BadRequest(format!("content-length overflow: {v:?}")))?
        } else {
            return Err(HttpError::BadRequest(format!(
                "invalid content-length: {v:?}"
            )));
        };
        match content_length {
            Some(prev) if prev != parsed => {
                return Err(HttpError::BadRequest(
                    "conflicting content-length headers".to_string(),
                ))
            }
            _ => content_length = Some(parsed),
        }
    }

    let body_len = match content_length {
        Some(n) if n > MAX_BODY_BYTES => return Err(HttpError::BodyTooLarge),
        Some(n) => n,
        // Methods that semantically carry a body must declare its length;
        // without one the request boundary is unknowable under keep-alive.
        None if matches!(method.as_str(), "POST" | "PUT" | "PATCH") => {
            return Err(HttpError::LengthRequired)
        }
        None => 0,
    };

    let total = head_len + body_len;
    if buf.len() < total {
        return Ok(None); // body still in flight
    }
    Ok(Some((
        Request {
            method,
            path,
            headers,
            body: buf[head_len..total].to_vec(),
        },
        total,
    )))
}

/// Parse `METHOD SP PATH SP HTTP/x.y` (no trailing CRLF).
fn parse_request_line(line: &[u8]) -> Result<(String, String), HttpError> {
    let line = std::str::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 request line".to_string()))?;
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line: {line:?}"
        )));
    };
    if !is_token(method) {
        return Err(HttpError::BadRequest(format!("invalid method: {method:?}")));
    }
    match version {
        "HTTP/1.1" | "HTTP/1.0" => {}
        v if v.starts_with("HTTP/") => return Err(HttpError::UnsupportedVersion),
        v => {
            return Err(HttpError::BadRequest(format!(
                "malformed HTTP version: {v:?}"
            )))
        }
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "invalid request target: {target:?}"
        )));
    }
    // Queries are accepted and ignored: no endpoint takes query parameters.
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok((method.to_string(), path))
}

/// Serialize one HTTP/1.1 response.
pub fn response_bytes(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    response_bytes_with(status, reason, content_type, body, keep_alive, &[])
}

/// Serialize one HTTP/1.1 response with extra `(name, value)` headers —
/// the shed path uses this for `Retry-After`.
pub fn response_bytes_with(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Serialize the error response for a parse failure (always `close`: the
/// connection's byte stream is no longer trustworthy).
pub fn error_response(err: &HttpError) -> Vec<u8> {
    let (status, reason) = err.status();
    let body = format!(
        "{{\"error\":{},\"status\":{status}}}",
        crate::json::quote(&err.detail())
    );
    response_bytes(status, reason, "application/json", body.as_bytes(), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &[u8]) -> (Request, usize) {
        parse_request(raw).expect("parse").expect("complete")
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert_eq!(used, raw.len());
    }

    #[test]
    fn parses_post_with_exact_body_and_leftover() {
        let raw = b"POST /match HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdXTRA";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.body, b"abcd");
        assert_eq!(used, raw.len() - 4, "pipelined remainder stays unread");
    }

    #[test]
    fn strips_query_and_lowercases_header_names() {
        let raw = b"GET /metrics?verbose=1 HTTP/1.1\r\nX-Trace-ID: 7\r\n\r\n";
        let (req, _) = parse_ok(raw);
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.header("x-trace-id"), Some("7"));
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let raw = b"POST /clean HTTP/1.1\r\ncontent-length: 3\r\n\r\nab";
        for cut in 0..raw.len() {
            assert_eq!(
                parse_request(&raw[..cut]).expect("prefix must stay Ok"),
                None,
                "cut={cut}"
            );
        }
    }

    #[test]
    fn post_without_length_is_411() {
        let raw = b"POST /match HTTP/1.1\r\nhost: x\r\n\r\n";
        assert_eq!(parse_request(raw), Err(HttpError::LengthRequired));
    }

    #[test]
    fn bad_content_length_is_400() {
        for bad in ["abc", "-1", "1.5", "", "18446744073709551616", "4 4"] {
            let raw = format!("POST / HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
            assert!(
                matches!(parse_request(raw.as_bytes()), Err(HttpError::BadRequest(_))),
                "content-length {bad:?}"
            );
        }
    }

    #[test]
    fn conflicting_lengths_rejected_matching_accepted() {
        let conflicting = b"POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\nxx";
        assert!(matches!(
            parse_request(conflicting),
            Err(HttpError::BadRequest(_))
        ));
        let matching = b"POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 1\r\n\r\nx";
        assert_eq!(parse_ok(matching).0.body, b"x");
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_request(raw.as_bytes()), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn oversized_head_is_431_even_unterminated() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + 8));
        assert_eq!(parse_request(&raw), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn chunked_transfer_encoding_is_501() {
        let raw = b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert_eq!(
            parse_request(raw),
            Err(HttpError::UnsupportedTransferEncoding)
        );
    }

    #[test]
    fn wrong_version_is_505_and_junk_is_400() {
        assert_eq!(
            parse_request(b"GET / HTTP/2.0\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        );
        assert!(matches!(
            parse_request(b"GET / FTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Junk is rejected as soon as the request line is complete, without
        // waiting for a header terminator.
        assert!(matches!(
            parse_request(b"\x16\x03\x01\x02\x00\r\nmore"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn error_statuses_are_stable() {
        assert_eq!(HttpError::BadRequest(String::new()).status().0, 400);
        assert_eq!(HttpError::LengthRequired.status().0, 411);
        assert_eq!(HttpError::BodyTooLarge.status().0, 413);
        assert_eq!(HttpError::HeadersTooLarge.status().0, 431);
        assert_eq!(HttpError::UnsupportedTransferEncoding.status().0, 501);
        assert_eq!(HttpError::UnsupportedVersion.status().0, 505);
    }

    #[test]
    fn response_bytes_with_inserts_extra_headers_before_body() {
        let out = response_bytes_with(
            503,
            "Service Unavailable",
            "application/json",
            b"{}",
            false,
            &[("retry-after", "2".to_string())],
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn response_bytes_roundtrip_shape() {
        let out = response_bytes(200, "OK", "application/json", b"{}", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
