//! MixDA interpolation support (Snippext / Miao et al. 2020).
//!
//! MixDA "partially" applies a DA operator by convexly interpolating the LM
//! representation of the augmented sequence with the original one:
//! `h = λ·h(x) + (1−λ)·h(x̂)` with `λ ~ Beta(α, α)` folded to `λ ≥ 0.5`, so
//! the mixed representation always stays closer to the original.
//!
//! The interpolation itself happens at the model's [CLS] representation (see
//! `rotom::model`); this module provides the λ sampler and the MixDA batch
//! plan.

use rotom_rng::rngs::StdRng;
use rotom_rng::RngExt;

/// Sample `λ ~ Beta(α, α)` folded to `[0.5, 1]`.
///
/// Uses the Jöhnk/gamma-free method via two uniforms for α ≤ 1 and the ratio
/// of gamma draws approximated by sums for α > 1; for the α values used in
/// practice (0.1–8) a simple rejection-free transformation is sufficient.
pub fn sample_lambda(alpha: f32, rng: &mut StdRng) -> f32 {
    let lambda = sample_beta(alpha, alpha, rng);
    lambda.max(1.0 - lambda)
}

/// Sample from Beta(a, b) via two Gamma draws (Marsaglia–Tsang with boost
/// for shape < 1).
fn sample_beta(a: f32, b: f32, rng: &mut StdRng) -> f32 {
    let x = sample_gamma(a, rng);
    let y = sample_gamma(b, rng);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

fn sample_gamma(shape: f32, rng: &mut StdRng) -> f32 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f32 = rng.random_range(f32::EPSILON..1.0);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    // Marsaglia–Tsang squeeze method.
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f32 = rng.random_range(f32::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    #[test]
    fn lambda_always_at_least_half() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            let l = sample_lambda(0.8, &mut rng);
            assert!((0.5..=1.0).contains(&l), "lambda {l} out of range");
        }
    }

    #[test]
    fn small_alpha_concentrates_at_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 1000;
        let near_one = (0..n)
            .filter(|_| sample_lambda(0.1, &mut rng) > 0.9)
            .count();
        // Beta(0.1, 0.1) is strongly bimodal at {0, 1}; after folding most
        // mass sits near 1.
        assert!(near_one > n / 2, "only {near_one}/{n} samples near 1");
    }

    #[test]
    fn beta_mean_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 3000;
        let mean: f32 = (0..n).map(|_| sample_beta(2.0, 2.0, &mut rng)).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
