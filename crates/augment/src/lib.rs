//! `rotom-augment` — data augmentation operators for Rotom.
//!
//! Three families of augmentation live here:
//!
//! * the **simple DA operators** of paper Table 3 ([`ops`]), structure-aware
//!   token/span/column/entity transformations;
//! * **InvDA** ([`invda`]), the seq2seq operator trained to invert multi-op
//!   corruption (paper §3, Algorithm 1);
//! * **MixDA** ([`mixda`]) interpolation support (the representation-level
//!   "partial" application of an operator used by the MixDA baseline);
//! * **diversity metrics** ([`diversity`]) quantifying the paper's
//!   diversity/quality trade-off.

#![warn(missing_docs)]

pub mod corrupt;
pub mod diversity;
pub mod invda;
pub mod mixda;
pub mod ops;

pub use corrupt::{corrupt, corruption_pairs};
pub use diversity::{diversity, normalized_edit_distance, token_edit_distance, DiversityStats};
pub use invda::{InvDa, InvDaConfig};
pub use ops::{apply, apply_batch, DaContext, DaOp, Sampling};
pub use rotom_text::example::{AugExample, Example};
