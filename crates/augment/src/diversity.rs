//! Diversity measurement for augmented examples.
//!
//! The paper frames DA as a *diversity/quality trade-off* (§1, §3.2): simple
//! operators change ≤1 token (low diversity, high label fidelity) while
//! generation can drift arbitrarily far. These utilities quantify the
//! diversity side — token-level edit distance between an original and its
//! augmentations — and back the repository's claims about operator behaviour
//! (e.g. InvDA's edits are strictly larger than `token_repl`'s).

/// Levenshtein edit distance over token sequences.
pub fn token_edit_distance(a: &[String], b: &[String]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ta) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, tb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ta != tb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Edit distance normalized by the longer sequence length (`0` identical,
/// `1` completely rewritten).
pub fn normalized_edit_distance(a: &[String], b: &[String]) -> f32 {
    let denom = a.len().max(b.len());
    if denom == 0 {
        return 0.0;
    }
    token_edit_distance(a, b) as f32 / denom as f32
}

/// Aggregate diversity of a set of augmentations of one original.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityStats {
    /// Mean normalized edit distance from the original.
    pub mean_edit: f32,
    /// Maximum normalized edit distance from the original.
    pub max_edit: f32,
    /// Fraction of pairwise-distinct augmentations.
    pub distinct_ratio: f32,
}

/// Measure the diversity of `variants` against `original`.
pub fn diversity(original: &[String], variants: &[Vec<String>]) -> DiversityStats {
    if variants.is_empty() {
        return DiversityStats {
            mean_edit: 0.0,
            max_edit: 0.0,
            distinct_ratio: 0.0,
        };
    }
    let dists: Vec<f32> = variants
        .iter()
        .map(|v| normalized_edit_distance(original, v))
        .collect();
    let mean_edit = dists.iter().sum::<f32>() / dists.len() as f32;
    let max_edit = dists.iter().copied().fold(0.0f32, f32::max);
    let mut distinct = 0usize;
    for (i, v) in variants.iter().enumerate() {
        if !variants[..i].contains(v) {
            distinct += 1;
        }
    }
    DiversityStats {
        mean_edit,
        max_edit,
        distinct_ratio: distinct as f32 / variants.len() as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{apply, DaContext, DaOp};
    use rotom_rng::rngs::StdRng;
    use rotom_rng::SeedableRng;
    use rotom_text::tokenize;

    #[test]
    fn edit_distance_basics() {
        let a = tokenize("a b c");
        let b = tokenize("a x c");
        assert_eq!(token_edit_distance(&a, &b), 1);
        assert_eq!(token_edit_distance(&a, &a), 0);
        assert_eq!(token_edit_distance(&a, &[]), 3);
        assert_eq!(token_edit_distance(&[], &a), 3);
    }

    #[test]
    fn edit_distance_insert_delete() {
        let a = tokenize("a b c d");
        let b = tokenize("a c d e");
        // delete b, insert e
        assert_eq!(token_edit_distance(&a, &b), 2);
    }

    #[test]
    fn normalized_range() {
        let a = tokenize("a b c");
        let b = tokenize("x y z");
        assert_eq!(normalized_edit_distance(&a, &b), 1.0);
        assert_eq!(normalized_edit_distance(&a, &a), 0.0);
    }

    #[test]
    fn single_token_ops_bounded_diversity() {
        // token_repl changes exactly one token: normalized distance 1/len.
        let original = tokenize("fast databases are good tools");
        let ctx = DaContext::default();
        let mut rng = StdRng::seed_from_u64(1);
        let variants: Vec<Vec<String>> = (0..10)
            .map(|_| apply(DaOp::TokenRepl, &original, &ctx, &mut rng))
            .collect();
        let stats = diversity(&original, &variants);
        assert!(
            stats.max_edit <= 1.0 / original.len() as f32 + 1e-6,
            "{stats:?}"
        );
    }

    #[test]
    fn distinct_ratio_counts_duplicates() {
        let original = tokenize("a b");
        let variants = vec![tokenize("a x"), tokenize("a x"), tokenize("y b")];
        let stats = diversity(&original, &variants);
        assert!((stats.distinct_ratio - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_variants() {
        let stats = diversity(&tokenize("a"), &[]);
        assert_eq!(stats.mean_edit, 0.0);
    }
}
