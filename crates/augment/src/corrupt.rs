//! Multi-operator corruption (the inner loop of Algorithm 1).
//!
//! InvDA's training data is built by corrupting original sequences with `n`
//! uniformly sampled simple DA operators; the seq2seq model then learns to
//! *invert* the corruption.

use crate::ops::{apply, DaContext, DaOp};
use rotom_rng::rngs::StdRng;
use rotom_rng::RngExt;

/// Apply `n` operators sampled uniformly from `ops` in sequence.
pub fn corrupt(
    tokens: &[String],
    ops: &[DaOp],
    n: usize,
    ctx: &DaContext,
    rng: &mut StdRng,
) -> Vec<String> {
    assert!(!ops.is_empty(), "corrupt requires at least one operator");
    let mut out = tokens.to_vec();
    for _ in 0..n {
        let op = ops[rng.random_range(0..ops.len())];
        out = apply(op, &out, ctx, rng);
    }
    out
}

/// Build the (corrupted → original) input/target pairs of Algorithm 1 for a
/// whole training corpus, `pairs_per_seq` pairs per sequence.
pub fn corruption_pairs(
    corpus: &[Vec<String>],
    ops: &[DaOp],
    n: usize,
    pairs_per_seq: usize,
    ctx: &DaContext,
    rng: &mut StdRng,
) -> Vec<(Vec<String>, Vec<String>)> {
    let mut out = Vec::with_capacity(corpus.len() * pairs_per_seq);
    for seq in corpus {
        for _ in 0..pairs_per_seq {
            let input = corrupt(seq, ops, n, ctx, rng);
            out.push((input, seq.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;
    use rotom_text::tokenizer::tokenize;

    #[test]
    fn corruption_usually_changes_the_sequence() {
        let toks = tokenize("the quick brown fox jumps over the lazy dog");
        let ctx = DaContext::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut changed = 0;
        for _ in 0..20 {
            if corrupt(&toks, &DaOp::TEXT_LEVEL, 3, &ctx, &mut rng) != toks {
                changed += 1;
            }
        }
        assert!(changed >= 18);
    }

    #[test]
    fn pairs_target_is_original() {
        let corpus = vec![tokenize("alpha beta gamma delta")];
        let ctx = DaContext::default();
        let mut rng = StdRng::seed_from_u64(4);
        let pairs = corruption_pairs(&corpus, &DaOp::TEXT_LEVEL, 2, 3, &ctx, &mut rng);
        assert_eq!(pairs.len(), 3);
        for (_, target) in &pairs {
            assert_eq!(target, &corpus[0]);
        }
    }
}
