//! The simple data-augmentation operators of Table 3.
//!
//! Every operator transforms a serialized token sequence while preserving the
//! `[COL]`/`[VAL]`/`[SEP]` structure: token- and span-level operators only
//! touch tokens inside value spans, attribute-level operators move or drop
//! whole `[COL] …` groups, and `entity_swap` exchanges the two sides of the
//! `[SEP]`.
//!
//! Token sampling is either uniform or importance-aware (inverse document
//! frequency: frequent, uninformative tokens are more likely to be deleted or
//! replaced — §2.3).

use rotom_rng::rngs::StdRng;
use rotom_rng::RngExt;
use rotom_text::idf::IdfIndex;
use rotom_text::serialize::parse_structure;
use rotom_text::thesaurus::Thesaurus;
use rotom_text::token::{is_structural, SEP};

/// How destructive operators pick target tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sampling {
    /// Uniform over eligible positions.
    #[default]
    Uniform,
    /// Weighted by inverse importance (low-IDF tokens more likely).
    Idf,
}

/// The simple DA operators of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DaOp {
    /// Sample and delete a token.
    TokenDel,
    /// Sample a token and replace it with a synonym.
    TokenRepl,
    /// Sample two tokens and swap them.
    TokenSwap,
    /// Sample a token and insert a synonym to its right.
    TokenInsert,
    /// Sample and delete a span of tokens.
    SpanDel,
    /// Sample a span of tokens and shuffle their order.
    SpanShuffle,
    /// Choose two columns/attributes and swap their order (EM / EDT only).
    ColShuffle,
    /// Choose a column/attribute and drop it entirely (EM / EDT only).
    ColDel,
    /// Swap the order of the two entity records (EM only).
    EntitySwap,
}

impl DaOp {
    /// All operators, in Table 3 order.
    pub const ALL: [DaOp; 9] = [
        DaOp::TokenDel,
        DaOp::TokenRepl,
        DaOp::TokenSwap,
        DaOp::TokenInsert,
        DaOp::SpanDel,
        DaOp::SpanShuffle,
        DaOp::ColShuffle,
        DaOp::ColDel,
        DaOp::EntitySwap,
    ];

    /// The token/span-level operators applicable to any task.
    pub const TEXT_LEVEL: [DaOp; 6] = [
        DaOp::TokenDel,
        DaOp::TokenRepl,
        DaOp::TokenSwap,
        DaOp::TokenInsert,
        DaOp::SpanDel,
        DaOp::SpanShuffle,
    ];

    /// Short snake_case name (matches Table 3).
    pub fn name(self) -> &'static str {
        match self {
            DaOp::TokenDel => "token_del",
            DaOp::TokenRepl => "token_repl",
            DaOp::TokenSwap => "token_swap",
            DaOp::TokenInsert => "token_insert",
            DaOp::SpanDel => "span_del",
            DaOp::SpanShuffle => "span_shuffle",
            DaOp::ColShuffle => "col_shuffle",
            DaOp::ColDel => "col_del",
            DaOp::EntitySwap => "entity_swap",
        }
    }
}

/// Shared context for applying DA operators.
pub struct DaContext {
    /// Synonym source for `token_repl` / `token_insert`.
    pub thesaurus: Thesaurus,
    /// Optional IDF index enabling importance-aware sampling.
    pub idf: Option<IdfIndex>,
    /// Sampling strategy for destructive operators.
    pub sampling: Sampling,
    /// Maximum span length for span-level operators.
    pub max_span: usize,
}

impl Default for DaContext {
    fn default() -> Self {
        Self {
            thesaurus: Thesaurus::builtin(),
            idf: None,
            sampling: Sampling::Uniform,
            max_span: 4,
        }
    }
}

impl DaContext {
    /// Context with IDF-aware sampling over the given corpus statistics.
    pub fn with_idf(idf: IdfIndex) -> Self {
        Self {
            idf: Some(idf),
            sampling: Sampling::Idf,
            ..Self::default()
        }
    }

    fn pick_position(
        &self,
        tokens: &[String],
        eligible: &[usize],
        rng: &mut StdRng,
    ) -> Option<usize> {
        if eligible.is_empty() {
            return None;
        }
        match (self.sampling, &self.idf) {
            (Sampling::Idf, Some(idf)) => {
                let weights: Vec<f32> = eligible
                    .iter()
                    .map(|&i| idf.removal_weight(&tokens[i]))
                    .collect();
                weighted_choice(&weights, rng).map(|k| eligible[k])
            }
            _ => Some(eligible[rng.random_range(0..eligible.len())]),
        }
    }
}

/// Sample an index proportionally to `weights`; `None` if all weights are 0.
fn weighted_choice(weights: &[f32], rng: &mut StdRng) -> Option<usize> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut r = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if r < w {
            return Some(i);
        }
        r -= w;
    }
    Some(weights.len() - 1)
}

/// Positions of tokens inside value spans (the only tokens destructive
/// operators may touch). For plain text this is every position.
fn value_positions(tokens: &[String]) -> Vec<usize> {
    let s = parse_structure(tokens);
    let mut out = Vec::new();
    for (a, b) in s.value_spans {
        for i in a..b {
            if !is_structural(&tokens[i]) {
                out.push(i);
            }
        }
    }
    out
}

/// Apply `op` to `tokens`, returning the transformed sequence.
///
/// Operators that cannot apply (e.g. `entity_swap` on a sequence without
/// `[SEP]`, or `token_repl` with no synonym-bearing token) return the input
/// unchanged — never panic.
pub fn apply(op: DaOp, tokens: &[String], ctx: &DaContext, rng: &mut StdRng) -> Vec<String> {
    match op {
        DaOp::TokenDel => token_del(tokens, ctx, rng),
        DaOp::TokenRepl => token_repl(tokens, ctx, rng),
        DaOp::TokenSwap => token_swap(tokens, ctx, rng),
        DaOp::TokenInsert => token_insert(tokens, ctx, rng),
        DaOp::SpanDel => span_del(tokens, ctx, rng),
        DaOp::SpanShuffle => span_shuffle(tokens, ctx, rng),
        DaOp::ColShuffle => col_shuffle(tokens, rng),
        DaOp::ColDel => col_del(tokens, rng),
        DaOp::EntitySwap => entity_swap(tokens),
    }
}

/// Apply `op` to every input, fanning out across `pool`.
///
/// Each example gets its own RNG seeded by `split_seed(base_seed, index)`,
/// so the result depends only on `(op, inputs, base_seed)` — bit-identical
/// at any worker count, including a 1-thread (serial) pool.
pub fn apply_batch(
    op: DaOp,
    inputs: &[&[String]],
    ctx: &DaContext,
    base_seed: u64,
    pool: &rotom_nn::RotomPool,
) -> Vec<Vec<String>> {
    use rotom_rng::SeedableRng;
    let out = pool.map(inputs.len(), |i| {
        let mut rng = StdRng::seed_from_u64(rotom_rng::split_seed(base_seed, i as u64));
        apply(op, inputs[i], ctx, &mut rng)
    });
    emit_aug_record(op.name(), inputs, &out);
    out
}

/// Emit one `aug` telemetry record for a finished augmentation batch:
/// batch size, how many outputs differ from their input, and the mean token
/// length delta. Pure observation of already-computed results — consumes no
/// RNG and never alters the outputs.
pub(crate) fn emit_aug_record(op_name: &str, inputs: &[&[String]], outputs: &[Vec<String>]) {
    use rotom_nn::telemetry::{self, Value};
    if !telemetry::enabled() || outputs.is_empty() {
        return;
    }
    let changed = inputs
        .iter()
        .zip(outputs)
        .filter(|(inp, out)| inp[..] != out[..])
        .count();
    let len_delta: i64 = inputs
        .iter()
        .zip(outputs)
        .map(|(inp, out)| out.len() as i64 - inp.len() as i64)
        .sum();
    telemetry::emit(
        "aug",
        op_name,
        &[
            ("n", Value::U64(outputs.len() as u64)),
            ("changed", Value::U64(changed as u64)),
            (
                "mean_len_delta",
                Value::F64(len_delta as f64 / outputs.len() as f64),
            ),
        ],
    );
}

fn token_del(tokens: &[String], ctx: &DaContext, rng: &mut StdRng) -> Vec<String> {
    let eligible = value_positions(tokens);
    match ctx.pick_position(tokens, &eligible, rng) {
        Some(i) => {
            let mut out = tokens.to_vec();
            out.remove(i);
            out
        }
        None => tokens.to_vec(),
    }
}

fn token_repl(tokens: &[String], ctx: &DaContext, rng: &mut StdRng) -> Vec<String> {
    let eligible: Vec<usize> = value_positions(tokens)
        .into_iter()
        .filter(|&i| ctx.thesaurus.has_synonym(&tokens[i]))
        .collect();
    match ctx.pick_position(tokens, &eligible, rng) {
        Some(i) => {
            let syns = ctx.thesaurus.synonyms(&tokens[i]);
            let syn = syns[rng.random_range(0..syns.len())].to_string();
            let mut out = tokens.to_vec();
            out[i] = syn;
            out
        }
        None => tokens.to_vec(),
    }
}

fn token_swap(tokens: &[String], ctx: &DaContext, rng: &mut StdRng) -> Vec<String> {
    let eligible = value_positions(tokens);
    if eligible.len() < 2 {
        return tokens.to_vec();
    }
    let a = match ctx.pick_position(tokens, &eligible, rng) {
        Some(i) => i,
        None => return tokens.to_vec(),
    };
    let others: Vec<usize> = eligible.into_iter().filter(|&i| i != a).collect();
    let b = others[rng.random_range(0..others.len())];
    let mut out = tokens.to_vec();
    out.swap(a, b);
    out
}

fn token_insert(tokens: &[String], ctx: &DaContext, rng: &mut StdRng) -> Vec<String> {
    let eligible: Vec<usize> = value_positions(tokens)
        .into_iter()
        .filter(|&i| ctx.thesaurus.has_synonym(&tokens[i]))
        .collect();
    match ctx.pick_position(tokens, &eligible, rng) {
        Some(i) => {
            let syns = ctx.thesaurus.synonyms(&tokens[i]);
            let syn = syns[rng.random_range(0..syns.len())].to_string();
            let mut out = tokens.to_vec();
            out.insert(i + 1, syn);
            out
        }
        None => tokens.to_vec(),
    }
}

/// Contiguous runs of eligible (value, non-structural) positions.
fn value_runs(tokens: &[String]) -> Vec<(usize, usize)> {
    let s = parse_structure(tokens);
    s.value_spans.into_iter().filter(|(a, b)| b > a).collect()
}

fn span_del(tokens: &[String], ctx: &DaContext, rng: &mut StdRng) -> Vec<String> {
    let runs = value_runs(tokens);
    if runs.is_empty() {
        return tokens.to_vec();
    }
    let (a, b) = runs[rng.random_range(0..runs.len())];
    let run_len = b - a;
    let span = rng.random_range(1..=ctx.max_span.min(run_len));
    let start = a + rng.random_range(0..=run_len - span);
    let mut out = tokens.to_vec();
    out.drain(start..start + span);
    out
}

fn span_shuffle(tokens: &[String], ctx: &DaContext, rng: &mut StdRng) -> Vec<String> {
    let runs: Vec<(usize, usize)> = value_runs(tokens)
        .into_iter()
        .filter(|(a, b)| b - a >= 2)
        .collect();
    if runs.is_empty() {
        return tokens.to_vec();
    }
    let (a, b) = runs[rng.random_range(0..runs.len())];
    let run_len = b - a;
    let span = rng.random_range(2..=ctx.max_span.min(run_len).max(2).min(run_len));
    let start = a + rng.random_range(0..=run_len - span);
    let mut out = tokens.to_vec();
    // Fisher–Yates over the chosen span.
    for i in (1..span).rev() {
        let j = rng.random_range(0..=i);
        out.swap(start + i, start + j);
    }
    out
}

/// Groups of `[COL] …` spans per entity segment (split by `[SEP]`).
fn col_groups(tokens: &[String]) -> Vec<Vec<(usize, usize)>> {
    let s = parse_structure(tokens);
    let sep = s.sep_index.unwrap_or(tokens.len());
    let mut left = Vec::new();
    let mut right = Vec::new();
    for span in s.col_spans {
        if span.0 < sep {
            left.push(span);
        } else {
            right.push(span);
        }
    }
    let mut groups = Vec::new();
    if !left.is_empty() {
        groups.push(left);
    }
    if !right.is_empty() {
        groups.push(right);
    }
    groups
}

fn col_shuffle(tokens: &[String], rng: &mut StdRng) -> Vec<String> {
    let groups = col_groups(tokens);
    let eligible: Vec<&Vec<(usize, usize)>> = groups.iter().filter(|g| g.len() >= 2).collect();
    if eligible.is_empty() {
        return tokens.to_vec();
    }
    let group = eligible[rng.random_range(0..eligible.len())];
    let i = rng.random_range(0..group.len());
    let mut j = rng.random_range(0..group.len() - 1);
    if j >= i {
        j += 1;
    }
    let (lo, hi) = if group[i].0 < group[j].0 {
        (group[i], group[j])
    } else {
        (group[j], group[i])
    };
    let mut out = Vec::with_capacity(tokens.len());
    out.extend_from_slice(&tokens[..lo.0]);
    out.extend_from_slice(&tokens[hi.0..hi.1]);
    out.extend_from_slice(&tokens[lo.1..hi.0]);
    out.extend_from_slice(&tokens[lo.0..lo.1]);
    out.extend_from_slice(&tokens[hi.1..]);
    out
}

fn col_del(tokens: &[String], rng: &mut StdRng) -> Vec<String> {
    let groups = col_groups(tokens);
    // Only delete when the segment retains at least one column.
    let eligible: Vec<&Vec<(usize, usize)>> = groups.iter().filter(|g| g.len() >= 2).collect();
    if eligible.is_empty() {
        return tokens.to_vec();
    }
    let group = eligible[rng.random_range(0..eligible.len())];
    let (a, b) = group[rng.random_range(0..group.len())];
    let mut out = tokens.to_vec();
    out.drain(a..b);
    out
}

fn entity_swap(tokens: &[String]) -> Vec<String> {
    let s = parse_structure(tokens);
    match s.sep_index {
        Some(sep) => {
            let mut out = Vec::with_capacity(tokens.len());
            out.extend_from_slice(&tokens[sep + 1..]);
            out.push(SEP.to_string());
            out.extend_from_slice(&tokens[..sep]);
            out
        }
        None => tokens.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;
    use rotom_text::serialize::{serialize_pair, serialize_record, Record};
    use rotom_text::tokenizer::tokenize;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn record() -> Record {
        Record::new(vec![
            ("title", "effective timestamping in relational databases"),
            ("year", "1999"),
        ])
    }

    #[test]
    fn token_del_removes_exactly_one() {
        let toks = tokenize("where is the orange bowl");
        let out = apply(DaOp::TokenDel, &toks, &DaContext::default(), &mut rng());
        assert_eq!(out.len(), toks.len() - 1);
    }

    #[test]
    fn token_del_never_removes_markers() {
        let toks = serialize_record(&record());
        let markers = |t: &[String]| t.iter().filter(|x| is_structural(x)).count();
        let mut r = rng();
        for _ in 0..50 {
            let out = apply(DaOp::TokenDel, &toks, &DaContext::default(), &mut r);
            assert_eq!(markers(&out), markers(&toks));
        }
    }

    #[test]
    fn token_repl_substitutes_synonym() {
        let toks = tokenize("effective timestamping in relational databases");
        let ctx = DaContext::default();
        let mut r = rng();
        let out = apply(DaOp::TokenRepl, &toks, &ctx, &mut r);
        assert_eq!(out.len(), toks.len());
        let diff = out.iter().zip(&toks).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1, "{out:?}");
    }

    #[test]
    fn token_insert_grows_by_one() {
        let toks = tokenize("fast databases are good");
        let out = apply(DaOp::TokenInsert, &toks, &DaContext::default(), &mut rng());
        assert_eq!(out.len(), toks.len() + 1);
    }

    #[test]
    fn token_swap_is_permutation() {
        let toks = tokenize("a b c d e");
        let out = apply(DaOp::TokenSwap, &toks, &DaContext::default(), &mut rng());
        let mut a = toks.clone();
        let mut b = out.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_ne!(out, toks);
    }

    #[test]
    fn span_del_removes_contiguous_span() {
        let toks = tokenize("one two three four five six");
        let out = apply(DaOp::SpanDel, &toks, &DaContext::default(), &mut rng());
        assert!(out.len() < toks.len());
        // Remaining tokens appear in original order (subsequence check).
        let mut it = toks.iter();
        for t in &out {
            assert!(it.any(|x| x == t), "output not a subsequence");
        }
    }

    #[test]
    fn span_shuffle_preserves_multiset() {
        let toks = tokenize("one two three four five six");
        let out = apply(DaOp::SpanShuffle, &toks, &DaContext::default(), &mut rng());
        let mut a = toks.clone();
        let mut b = out.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn col_del_drops_one_column() {
        let toks = serialize_record(&record());
        let out = apply(DaOp::ColDel, &toks, &DaContext::default(), &mut rng());
        let cols = |t: &[String]| t.iter().filter(|x| *x == "[COL]").count();
        assert_eq!(cols(&out), cols(&toks) - 1);
    }

    #[test]
    fn col_shuffle_keeps_all_tokens() {
        let toks = serialize_record(&record());
        let out = apply(DaOp::ColShuffle, &toks, &DaContext::default(), &mut rng());
        let mut a = toks.clone();
        let mut b = out.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_ne!(out, toks);
    }

    #[test]
    fn entity_swap_is_involution() {
        let r1 = record();
        let r2 = Record::new(vec![("title", "efficient timestamps for database systems")]);
        let toks = serialize_pair(&r1, &r2);
        let once = apply(DaOp::EntitySwap, &toks, &DaContext::default(), &mut rng());
        let twice = apply(DaOp::EntitySwap, &once, &DaContext::default(), &mut rng());
        assert_ne!(once, toks);
        assert_eq!(twice, toks);
    }

    #[test]
    fn entity_swap_without_sep_is_identity() {
        let toks = tokenize("no separator here");
        let out = apply(DaOp::EntitySwap, &toks, &DaContext::default(), &mut rng());
        assert_eq!(out, toks);
    }

    #[test]
    fn idf_sampling_prefers_common_tokens() {
        let docs: Vec<Vec<String>> = vec![
            tokenize("the red camera"),
            tokenize("the blue phone"),
            tokenize("the green laptop"),
        ];
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        let ctx = DaContext::with_idf(IdfIndex::build(refs));
        let toks = tokenize("the red camera");
        let mut deleted_the = 0;
        let mut r = rng();
        for _ in 0..1000 {
            let out = apply(DaOp::TokenDel, &toks, &ctx, &mut r);
            if !out.contains(&"the".to_string()) {
                deleted_the += 1;
            }
        }
        // "the" appears in every doc (IDF 0, weight 1.0) vs rare tokens
        // (weight ≈ 0.71): expected ≈ 0.41·1000 = 413 deletions (σ ≈ 16),
        // clearly above the uniform rate of 333.
        assert!(
            deleted_the > 370,
            "deleted 'the' only {deleted_the}/1000 times"
        );
    }

    #[test]
    fn ops_never_panic_on_tiny_inputs() {
        let mut r = rng();
        let cases: Vec<Vec<String>> = vec![
            vec![],
            vec!["x".to_string()],
            vec!["[COL]".to_string()],
            vec!["[SEP]".to_string()],
            tokenize("[COL] a [VAL]"),
        ];
        for toks in cases {
            for op in DaOp::ALL {
                let _ = apply(op, &toks, &DaContext::default(), &mut r);
            }
        }
    }
}
