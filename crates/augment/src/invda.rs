//! InvDA — inverse data augmentation via a seq2seq model (paper §3).
//!
//! A Transformer encoder–decoder (the stand-in for the paper's fine-tuned
//! T5-base) is trained on (corrupted → original) pairs produced by
//! [Algorithm 1](crate::corrupt::corruption_pairs): the model learns to
//! *invert* the effect of multiple simple DA operators. At augmentation time
//! it is applied to *original* sequences, yielding natural, diverse
//! augmentations whose edits go beyond what any single simple operator can
//! produce.
//!
//! Generation uses top-k sampling restricted to the top-p probability mass
//! (the paper uses k=120 over the top 98% mass) and caches up to
//! `max_unique` distinct variants per input, exactly as the released Rotom
//! implementation pre-computes and caches InvDA outputs.

use crate::corrupt::corruption_pairs;
use crate::ops::{DaContext, DaOp};
use rotom_nn::{
    recycle_tape, take_pooled_tape, Adam, FwdCtx, ParamStore, TransformerConfig,
    TransformerDecoder, TransformerEncoder,
};
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::token::{BOS, EOS, PAD, UNK};
use rotom_text::vocab::Vocab;
use std::collections::HashMap;
use std::sync::Mutex;

/// InvDA hyper-parameters.
#[derive(Debug, Clone)]
pub struct InvDaConfig {
    /// Width of the seq2seq model.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width.
    pub d_ff: usize,
    /// Encoder/decoder layers.
    pub layers: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Dropout during training.
    pub dropout: f32,
    /// Operators used for corruption (Algorithm 1's `D`).
    pub corrupt_ops: Vec<DaOp>,
    /// Number of corruption operators applied per pair (Algorithm 1's `n`).
    pub num_corruptions: usize,
    /// Corruption pairs generated per corpus sequence per epoch.
    pub pairs_per_seq: usize,
    /// Training epochs over the corruption pairs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Top-k cutoff for sampling (paper: 120).
    pub top_k: usize,
    /// Nucleus (top-p) mass for sampling (paper: 0.98).
    pub top_p: f32,
    /// Maximum distinct cached variants per input (paper: 50).
    pub max_unique: usize,
    /// Maximum generated length.
    pub max_gen_len: usize,
    /// Vocabulary budget.
    pub vocab_size: usize,
}

impl Default for InvDaConfig {
    fn default() -> Self {
        Self {
            d_model: 48,
            heads: 4,
            d_ff: 96,
            layers: 2,
            max_len: 64,
            dropout: 0.1,
            corrupt_ops: DaOp::TEXT_LEVEL.to_vec(),
            num_corruptions: 3,
            pairs_per_seq: 2,
            epochs: 5,
            batch_size: 16,
            lr: 1e-3,
            top_k: 20,
            top_p: 0.98,
            max_unique: 8,
            max_gen_len: 48,
            vocab_size: 4096,
        }
    }
}

impl InvDaConfig {
    /// A very small configuration for unit tests.
    pub fn test_tiny() -> Self {
        Self {
            d_model: 16,
            heads: 2,
            d_ff: 32,
            layers: 1,
            max_len: 24,
            epochs: 2,
            pairs_per_seq: 1,
            batch_size: 4,
            max_unique: 3,
            max_gen_len: 16,
            ..Self::default()
        }
    }
}

/// A trained InvDA seq2seq augmentation operator.
pub struct InvDa {
    store: ParamStore,
    encoder: TransformerEncoder,
    decoder: TransformerDecoder,
    vocab: Vocab,
    cfg: InvDaConfig,
    cache: Mutex<HashMap<String, Vec<Vec<String>>>>,
    /// Seed for per-key variant generation. Each cache entry is generated
    /// with an RNG derived from this seed and a stable hash of the key, so
    /// cache contents depend only on the model and the input — never on
    /// caller RNG state, call order, or thread count.
    cache_seed: u64,
    /// Mean training loss per epoch (for diagnostics / the training-time
    /// experiment).
    pub training_losses: Vec<f32>,
}

/// FNV-1a over the key string: a stable hash (unlike `std`'s `RandomState`,
/// which is randomized per process) so cached variants are reproducible
/// across runs.
fn stable_key_hash(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl InvDa {
    /// Train InvDA on an (unlabeled) corpus of serialized token sequences
    /// following Algorithm 1.
    pub fn train(corpus: &[Vec<String>], cfg: InvDaConfig, seed: u64) -> Self {
        assert!(!corpus.is_empty(), "InvDA needs a non-empty corpus");
        let mut rng = StdRng::seed_from_u64(seed);
        let refs: Vec<&[String]> = corpus.iter().map(|s| s.as_slice()).collect();
        let vocab = Vocab::build(refs.iter().copied(), cfg.vocab_size);
        let tcfg = TransformerConfig {
            vocab: vocab.len(),
            d_model: cfg.d_model,
            heads: cfg.heads,
            d_ff: cfg.d_ff,
            layers: cfg.layers,
            max_len: cfg.max_len,
            dropout: cfg.dropout,
        };
        let mut store = ParamStore::new();
        let encoder = TransformerEncoder::new(&mut store, &mut rng, "invda.enc", tcfg.clone());
        let decoder = TransformerDecoder::new(&mut store, &mut rng, "invda.dec", tcfg);
        let mut model = Self {
            store,
            encoder,
            decoder,
            vocab,
            cfg,
            cache: Mutex::new(HashMap::new()),
            cache_seed: rotom_rng::split_seed(seed, 0x1a5_cafe),
            training_losses: Vec::new(),
        };
        model.fit(corpus, &mut rng);
        model
    }

    fn fit(&mut self, corpus: &[Vec<String>], rng: &mut StdRng) {
        let ctx = DaContext::default();
        let mut opt = Adam::new(self.cfg.lr);
        for _epoch in 0..self.cfg.epochs {
            let mut pairs = corruption_pairs(
                corpus,
                &self.cfg.corrupt_ops,
                self.cfg.num_corruptions,
                self.cfg.pairs_per_seq,
                &ctx,
                rng,
            );
            // Shuffle for SGD.
            for i in (1..pairs.len()).rev() {
                let j = rng.random_range(0..=i);
                pairs.swap(i, j);
            }
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in pairs.chunks(self.cfg.batch_size) {
                let loss = self.train_batch(chunk, rng, &mut opt);
                epoch_loss += loss;
                batches += 1;
            }
            self.training_losses
                .push(epoch_loss / batches.max(1) as f32);
        }
    }

    fn train_batch(
        &mut self,
        pairs: &[(Vec<String>, Vec<String>)],
        rng: &mut StdRng,
        opt: &mut Adam,
    ) -> f32 {
        let bos = self.vocab.special_id(BOS);
        let eos = self.vocab.special_id(EOS);
        let mut tape = take_pooled_tape();
        let mut losses = Vec::with_capacity(pairs.len());
        for (input, target) in pairs {
            let in_ids = self.clamp(self.vocab.encode(input));
            // Reserve one slot for BOS/EOS on the decoder side.
            let mut tgt_ids = self.vocab.encode(target);
            tgt_ids.truncate(self.cfg.max_len - 1);
            let mut dec_in = Vec::with_capacity(tgt_ids.len() + 1);
            dec_in.push(bos);
            dec_in.extend_from_slice(&tgt_ids);
            let mut dec_tgt = tgt_ids.clone();
            dec_tgt.push(eos);

            let mut ctx = FwdCtx::train(&self.store, self.cfg.dropout, rng);
            let memory = self.encoder.forward(&mut tape, &in_ids, &mut ctx);
            let logits = self.decoder.forward(&mut tape, &dec_in, memory, &mut ctx);
            let targets = one_hot_rows(&dec_tgt, self.vocab.len());
            losses.push(tape.cross_entropy(logits, &targets));
        }
        let loss = tape.mean_nodes(&losses);
        let value = tape.value(loss).item();
        self.store.zero_grad();
        tape.backward(loss, &mut self.store);
        recycle_tape(tape);
        self.store.clip_grad_norm(5.0);
        opt.step(&mut self.store);
        value
    }

    fn clamp(&self, mut ids: Vec<usize>) -> Vec<usize> {
        ids.truncate(self.cfg.max_len);
        if ids.is_empty() {
            ids.push(self.vocab.special_id(PAD));
        }
        ids
    }

    /// Vocabulary the model was trained with.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Generate one augmented variant of `tokens` by sampling from the
    /// decoder (no caching).
    ///
    /// Decoding runs on the tape-free inference plane: the encoder memory
    /// and the per-layer cross-attention K/V projections are computed once
    /// per call, and each step recomputes only the final decoder layer's
    /// last-row band plus a single-row vocabulary projection — bit-identical
    /// to decoding through full tape forwards.
    pub fn generate(&self, tokens: &[String], rng: &mut StdRng) -> Vec<String> {
        let in_ids = self.clamp(self.vocab.encode(tokens));
        let bos = self.vocab.special_id(BOS);
        let eos = self.vocab.special_id(EOS);
        let pad = self.vocab.special_id(PAD);
        let unk = self.vocab.special_id(UNK);

        let pool = rotom_nn::RotomPool::global();
        let out_ids = rotom_nn::with_infer_scratch(|scratch| {
            let (memory, mem_rows) =
                self.encoder
                    .infer_forward_with(&in_ids, &[], &self.store, pool, scratch);
            let kv = self
                .decoder
                .infer_prepare(&memory, mem_rows, &self.store, pool);
            let mut logits = vec![0.0f32; self.vocab.len()];
            let mut out_ids: Vec<usize> = vec![bos];
            for _ in 0..self.cfg.max_gen_len {
                self.decoder.infer_last_logits(
                    &out_ids,
                    &kv,
                    &self.store,
                    pool,
                    scratch,
                    &mut logits,
                );
                let next =
                    sample_top_k_top_p(&logits, self.cfg.top_k, self.cfg.top_p, &[bos, pad], rng);
                if next == eos {
                    break;
                }
                out_ids.push(next);
                if out_ids.len() >= self.cfg.max_len {
                    break;
                }
            }
            scratch.put(memory);
            out_ids
        });
        out_ids
            .into_iter()
            .skip(1)
            .filter(|&i| i != unk && i != pad)
            .map(|i| self.vocab.token(i).to_string())
            .collect()
    }

    /// Deterministic beam-search decoding: return up to `beam_width`
    /// hypotheses ranked by length-normalized log-likelihood. Sampling
    /// (`generate`) is the augmentation workhorse; beam search exposes the
    /// model's *most likely* reconstructions, useful for inspection and for
    /// repair-style applications (the paper's §8 data-cleaning direction).
    pub fn generate_beam(&self, tokens: &[String], beam_width: usize) -> Vec<Vec<String>> {
        assert!(beam_width > 0);
        let in_ids = self.clamp(self.vocab.encode(tokens));
        let bos = self.vocab.special_id(BOS);
        let eos = self.vocab.special_id(EOS);
        let pad = self.vocab.special_id(PAD);
        let unk = self.vocab.special_id(UNK);

        let pool = rotom_nn::RotomPool::global();
        let kv = rotom_nn::with_infer_scratch(|scratch| {
            let (memory, mem_rows) =
                self.encoder
                    .infer_forward_with(&in_ids, &[], &self.store, pool, scratch);
            let kv = self
                .decoder
                .infer_prepare(&memory, mem_rows, &self.store, pool);
            scratch.put(memory);
            kv
        });
        let mut last = vec![0.0f32; self.vocab.len()];

        struct Beam {
            ids: Vec<usize>,
            logp: f32,
            done: bool,
        }
        let mut beams = vec![Beam {
            ids: vec![bos],
            logp: 0.0,
            done: false,
        }];
        for _ in 0..self.cfg.max_gen_len {
            if beams.iter().all(|b| b.done) {
                break;
            }
            let mut candidates: Vec<Beam> = Vec::new();
            for beam in &beams {
                if beam.done {
                    candidates.push(Beam {
                        ids: beam.ids.clone(),
                        logp: beam.logp,
                        done: true,
                    });
                    continue;
                }
                rotom_nn::with_infer_scratch(|scratch| {
                    self.decoder.infer_last_logits(
                        &beam.ids,
                        &kv,
                        &self.store,
                        pool,
                        scratch,
                        &mut last,
                    );
                });
                let probs = rotom_nn::softmax_slice(&last);
                let mut ranked: Vec<(usize, f32)> = probs
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(i, _)| i != bos && i != pad)
                    .collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                for &(id, p) in ranked.iter().take(beam_width) {
                    let mut ids = beam.ids.clone();
                    let mut done = false;
                    if id == eos || ids.len() + 1 >= self.cfg.max_len {
                        done = true;
                    }
                    if id != eos {
                        ids.push(id);
                    }
                    candidates.push(Beam {
                        ids,
                        logp: beam.logp + p.max(1e-9).ln(),
                        done,
                    });
                }
            }
            // Length-normalized pruning.
            candidates.sort_by(|a, b| {
                let na = a.logp / a.ids.len().max(1) as f32;
                let nb = b.logp / b.ids.len().max(1) as f32;
                nb.partial_cmp(&na).unwrap_or(std::cmp::Ordering::Equal)
            });
            candidates.truncate(beam_width);
            beams = candidates;
        }
        beams
            .into_iter()
            .map(|b| {
                b.ids
                    .into_iter()
                    .skip(1)
                    .filter(|&i| i != unk && i != pad)
                    .map(|i| self.vocab.token(i).to_string())
                    .collect()
            })
            .collect()
    }

    /// Generate up to `n` *distinct* variants different from the input,
    /// retrying a bounded number of times (paper: up to 50 unique sequences).
    pub fn generate_unique(
        &self,
        tokens: &[String],
        n: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = Vec::new();
        let mut attempts = 0;
        while out.len() < n && attempts < n * 4 {
            attempts += 1;
            let cand = self.generate(tokens, rng);
            if !cand.is_empty() && cand != tokens && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }

    /// The cached variant set for `tokens`, generating it on first use.
    ///
    /// Generation draws from an RNG derived from the model's `cache_seed`
    /// and a stable hash of the input, so the variant set for a given input
    /// is a pure function of the model — independent of caller RNG state,
    /// the order inputs are first seen, and (in the batch path) the worker
    /// that happens to compute it. Two workers racing on the same key
    /// compute identical variants, so the duplicated insert is harmless.
    fn variants_for(&self, tokens: &[String]) -> Vec<Vec<String>> {
        let key = tokens.join(" ");
        if let Some(variants) = self.cache.lock().unwrap().get(&key) {
            return variants.clone();
        }
        let mut gen_rng = StdRng::seed_from_u64(rotom_rng::split_seed(
            self.cache_seed,
            stable_key_hash(&key),
        ));
        let variants = self.generate_unique(tokens, self.cfg.max_unique, &mut gen_rng);
        self.cache.lock().unwrap().insert(key, variants.clone());
        variants
    }

    /// Draw one augmentation from the per-input cache, populating it on first
    /// use (mirrors the paper's pre-compute-and-cache strategy: the training
    /// loop's per-epoch cost is then a cache lookup). The caller's RNG only
    /// selects among the cached variants; it never influences generation.
    pub fn augment(&self, tokens: &[String], rng: &mut StdRng) -> Vec<String> {
        let variants = self.variants_for(tokens);
        if variants.is_empty() {
            tokens.to_vec()
        } else {
            variants[rng.random_range(0..variants.len())].clone()
        }
    }

    /// Augment a whole batch, fanning the per-example generation out across
    /// `pool`. Each example's selection RNG is seeded by
    /// `split_seed(base_seed, index)`, and generation is keyed off the
    /// model's own cache seed, so the output is **bit-identical at any
    /// worker count** — including to a serial run with a 1-thread pool.
    pub fn augment_batch(
        &self,
        inputs: &[&[String]],
        base_seed: u64,
        pool: &rotom_nn::RotomPool,
    ) -> Vec<Vec<String>> {
        let out = pool.map(inputs.len(), |i| {
            let mut rng = StdRng::seed_from_u64(rotom_rng::split_seed(base_seed, i as u64));
            self.augment(inputs[i], &mut rng)
        });
        crate::ops::emit_aug_record("invda", inputs, &out);
        out
    }

    /// Number of inputs with cached variants.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Drop all cached variants (used by benchmarks to re-measure the full
    /// generation fan-out; regular training never needs this).
    pub fn clear_cache(&self) {
        self.cache.lock().unwrap().clear();
    }
}

/// One-hot encode a row of target ids into a flat `len x vocab` matrix.
fn one_hot_rows(ids: &[usize], vocab: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; ids.len() * vocab];
    for (r, &id) in ids.iter().enumerate() {
        out[r * vocab + id] = 1.0;
    }
    out
}

/// Top-k within top-p sampling (Holtzman et al.): restrict to the smallest
/// set of tokens covering probability mass `p`, intersect with the `k` most
/// likely, renormalize, sample. `banned` ids are excluded first.
fn sample_top_k_top_p(
    logits: &[f32],
    k: usize,
    p: f32,
    banned: &[usize],
    rng: &mut StdRng,
) -> usize {
    let probs = rotom_nn::softmax_slice(logits);
    let mut ranked: Vec<(usize, f32)> = probs
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| !banned.contains(i))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    // Nucleus cut.
    let mut mass = 0.0f32;
    let mut cutoff = ranked.len();
    for (i, (_, pr)) in ranked.iter().enumerate() {
        mass += pr;
        if mass >= p {
            cutoff = i + 1;
            break;
        }
    }
    let pool = &ranked[..cutoff.min(k).max(1)];
    let total: f32 = pool.iter().map(|(_, pr)| pr).sum();
    let mut r = rng.random_range(0.0..total.max(f32::MIN_POSITIVE));
    for &(id, pr) in pool {
        if r < pr {
            return id;
        }
        r -= pr;
    }
    pool[pool.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_text::tokenizer::tokenize;

    fn tiny_corpus() -> Vec<Vec<String>> {
        vec![
            tokenize("where is the orange bowl"),
            tokenize("where is the super bowl held"),
            tokenize("what is the capital of france"),
            tokenize("who won the world cup"),
            tokenize("where is the eiffel tower"),
            tokenize("what time is the game tonight"),
        ]
    }

    #[test]
    fn training_reduces_loss() {
        let mut cfg = InvDaConfig::test_tiny();
        cfg.epochs = 6;
        let model = InvDa::train(&tiny_corpus(), cfg, 7);
        let first = model.training_losses[0];
        let last = *model.training_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn generation_yields_vocab_tokens() {
        let model = InvDa::train(&tiny_corpus(), InvDaConfig::test_tiny(), 8);
        let mut rng = StdRng::seed_from_u64(1);
        let out = model.generate(&tokenize("where is the orange bowl"), &mut rng);
        assert!(out.len() <= model.cfg.max_gen_len);
        for tok in &out {
            assert!(
                model.vocab.try_id(tok).is_some(),
                "token {tok} not in vocab"
            );
        }
    }

    #[test]
    fn unique_variants_are_distinct() {
        let model = InvDa::train(&tiny_corpus(), InvDaConfig::test_tiny(), 9);
        let mut rng = StdRng::seed_from_u64(2);
        let input = tokenize("where is the orange bowl");
        let variants = model.generate_unique(&input, 3, &mut rng);
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v, &input);
            for w in &variants[i + 1..] {
                assert_ne!(v, w);
            }
        }
    }

    #[test]
    fn augment_caches() {
        let model = InvDa::train(&tiny_corpus(), InvDaConfig::test_tiny(), 10);
        let mut rng = StdRng::seed_from_u64(3);
        let input = tokenize("where is the orange bowl");
        assert_eq!(model.cache_len(), 0);
        let _ = model.augment(&input, &mut rng);
        assert_eq!(model.cache_len(), 1);
        let _ = model.augment(&input, &mut rng);
        assert_eq!(model.cache_len(), 1);
    }

    #[test]
    fn beam_search_is_deterministic_and_ranked() {
        let model = InvDa::train(&tiny_corpus(), InvDaConfig::test_tiny(), 12);
        let input = tokenize("where is the orange bowl");
        let a = model.generate_beam(&input, 3);
        let b = model.generate_beam(&input, 3);
        assert_eq!(a, b, "beam search must be deterministic");
        assert!(!a.is_empty() && a.len() <= 3);
        for hyp in &a {
            assert!(hyp.len() <= model.cfg.max_gen_len);
        }
    }

    #[test]
    fn concurrent_augment_is_safe() {
        // The generation cache is shared behind a std Mutex; hitting
        // it from several threads must neither dead-lock nor duplicate cache
        // entries for the same key.
        let model = InvDa::train(&tiny_corpus(), InvDaConfig::test_tiny(), 11);
        let input = tokenize("where is the orange bowl");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let model = &model;
                let input = input.clone();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..5 {
                        let out = model.augment(&input, &mut rng);
                        assert!(!out.is_empty() || input.is_empty());
                    }
                });
            }
        });
        assert_eq!(model.cache_len(), 1);
    }

    #[test]
    fn augment_batch_is_bit_identical_across_worker_counts() {
        // Explicit pools rather than ROTOM_THREADS, so the assertion holds
        // regardless of the environment this test runs under.
        let corpus = tiny_corpus();
        let model = InvDa::train(&corpus, InvDaConfig::test_tiny(), 13);
        let inputs: Vec<&[String]> = corpus.iter().map(|s| s.as_slice()).collect();
        let serial = model.augment_batch(&inputs, 99, &rotom_nn::RotomPool::new(1));
        assert_eq!(serial.len(), inputs.len());
        for threads in [2, 3, 8] {
            let parallel = model.augment_batch(&inputs, 99, &rotom_nn::RotomPool::new(threads));
            assert_eq!(serial, parallel, "threads={threads}");
        }
        // A cold cache must reproduce the same outputs: generation is keyed
        // off the model seed, not first-toucher RNG state.
        model.clear_cache();
        assert_eq!(model.cache_len(), 0);
        let regenerated = model.augment_batch(&inputs, 99, &rotom_nn::RotomPool::new(4));
        assert_eq!(serial, regenerated);
    }

    #[test]
    fn cache_contents_independent_of_first_caller() {
        // Two fresh models with the same training seed, first touched by
        // callers with different RNGs, must cache identical variant sets.
        let corpus = tiny_corpus();
        let a = InvDa::train(&corpus, InvDaConfig::test_tiny(), 14);
        let b = InvDa::train(&corpus, InvDaConfig::test_tiny(), 14);
        let input = tokenize("where is the orange bowl");
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(777);
        let _ = a.augment(&input, &mut rng_a);
        let _ = b.augment(&input, &mut rng_b);
        assert_eq!(a.variants_for(&input), b.variants_for(&input));
    }

    #[test]
    fn top_k_top_p_respects_ban_list() {
        let mut rng = StdRng::seed_from_u64(4);
        // Token 0 dominates but is banned.
        let logits = vec![10.0, 1.0, 0.5];
        for _ in 0..20 {
            let s = sample_top_k_top_p(&logits, 5, 0.98, &[0], &mut rng);
            assert_ne!(s, 0);
        }
    }
}
