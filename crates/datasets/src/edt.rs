//! Synthetic error-detection (data cleaning) benchmark generators.
//!
//! Five dirty spreadsheets mirroring the Raha benchmark suite used in the
//! paper (beers, hospital, movies, rayyan, tax). Each generator produces a
//! clean table from a domain grammar, then injects cell errors from the Raha
//! taxonomy: typos, format breaks, missing-value placeholders, out-of-domain
//! values, and violated functional dependencies. The ground-truth error mask
//! is kept per cell.
//!
//! Per the paper (§6.2): 20 uniformly sampled tuples form the test set, and
//! training sets of 50–200 cells are class-balanced between clean and dirty.

use crate::perturb::{break_phone, phone, pick, squash, typo, zip};
use crate::task::{shuffle, TaskDataset, TaskKind};
use crate::words::*;
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::example::Example;
use rotom_text::serialize::{serialize_cell, serialize_cell_in_context, Record};

/// The five EDT flavors (Table 6, right half).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdtFlavor {
    /// Craft beer catalogue.
    Beers,
    /// Hospital quality measures.
    Hospital,
    /// Movie metadata.
    Movies,
    /// Medical article screening (Rayyan).
    Rayyan,
    /// Personal tax records.
    Tax,
}

impl EdtFlavor {
    /// All flavors in Table 6 order.
    pub const ALL: [EdtFlavor; 5] = [
        EdtFlavor::Beers,
        EdtFlavor::Hospital,
        EdtFlavor::Movies,
        EdtFlavor::Rayyan,
        EdtFlavor::Tax,
    ];

    /// Canonical dataset name.
    pub fn name(self) -> &'static str {
        match self {
            EdtFlavor::Beers => "beers",
            EdtFlavor::Hospital => "hospital",
            EdtFlavor::Movies => "movies",
            EdtFlavor::Rayyan => "rayyan",
            EdtFlavor::Tax => "tax",
        }
    }

    /// Default number of rows (scaled-down versions of Table 6's table
    /// sizes).
    pub fn default_rows(self) -> usize {
        match self {
            EdtFlavor::Beers => 240,
            EdtFlavor::Hospital => 200,
            EdtFlavor::Movies => 300,
            EdtFlavor::Rayyan => 200,
            EdtFlavor::Tax => 400,
        }
    }
}

/// Error-injection taxonomy (Raha's four error types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Character-level typo.
    Typo,
    /// Formatting broken (squashed whitespace, mangled phone, wrong digits).
    Format,
    /// Missing-value placeholder.
    Missing,
    /// Value from the wrong domain (violates the column's pattern or an FD).
    Violation,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct EdtConfig {
    /// Number of rows in the table (`None` → flavor default).
    pub rows: Option<usize>,
    /// Fraction of cells that receive an injected error.
    pub error_rate: f32,
    /// Number of tuples held out for the test set (paper: 20).
    pub test_tuples: usize,
    /// Use context-dependent serialization (whole row + cell) instead of the
    /// context-independent form. The paper uses context-independent for these
    /// datasets.
    pub context: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EdtConfig {
    fn default() -> Self {
        Self {
            rows: None,
            error_rate: 0.18,
            test_tuples: 20,
            context: false,
            seed: 7,
        }
    }
}

/// A generated dirty table with ground truth.
#[derive(Debug, Clone)]
pub struct EdtDataset {
    /// Dataset name.
    pub name: String,
    /// Flavor this dataset was generated from.
    pub flavor: EdtFlavor,
    /// Column names.
    pub columns: Vec<String>,
    /// Table rows (dirty).
    pub rows: Vec<Record>,
    /// Per-row, per-column error mask (true = cell is erroneous).
    pub mask: Vec<Vec<bool>>,
    /// Kind of each injected error (aligned with `mask`; `None` when clean).
    pub kinds: Vec<Vec<Option<ErrorKind>>>,
    /// Indices of the held-out test tuples.
    pub test_rows: Vec<usize>,
    /// Whether serialization includes row context.
    pub context: bool,
}

impl EdtDataset {
    /// Number of injected errors.
    pub fn num_errors(&self) -> usize {
        self.mask.iter().flatten().filter(|&&b| b).count()
    }

    /// Serialize a single cell per the configured mode.
    fn cell_example(&self, row: usize, col: usize) -> Example {
        let attr = &self.columns[col];
        let r = &self.rows[row];
        let tokens = if self.context {
            serialize_cell_in_context(r, attr)
        } else {
            serialize_cell(attr, r.get(attr).unwrap_or(""))
        };
        Example::new(tokens, self.mask[row][col] as usize)
    }

    /// Convert to the common sequence-classification form. The train pool is
    /// every cell of every non-test row (experiments then sample a
    /// class-balanced subset); the test set is every cell of the 20 test
    /// rows; the unlabeled corpus is all cell serializations.
    pub fn to_task(&self) -> TaskDataset {
        let is_test: Vec<bool> = {
            let mut v = vec![false; self.rows.len()];
            for &r in &self.test_rows {
                v[r] = true;
            }
            v
        };
        let mut train_pool = Vec::new();
        let mut test = Vec::new();
        for r in 0..self.rows.len() {
            for c in 0..self.columns.len() {
                let ex = self.cell_example(r, c);
                if is_test[r] {
                    test.push(ex);
                } else {
                    train_pool.push(ex);
                }
            }
        }
        let unlabeled = train_pool.iter().map(|e| e.tokens.clone()).collect();
        TaskDataset {
            name: self.name.clone(),
            kind: TaskKind::ErrorDetection,
            num_classes: 2,
            train_pool,
            test,
            unlabeled,
        }
    }
}

// ---------------------------------------------------------------------------
// Clean-row generators
// ---------------------------------------------------------------------------

fn columns(flavor: EdtFlavor) -> Vec<String> {
    let cols: &[&str] = match flavor {
        EdtFlavor::Beers => &[
            "id",
            "beer_name",
            "style",
            "abv",
            "ibu",
            "brewery",
            "city",
            "state",
        ],
        EdtFlavor::Hospital => &[
            "provider", "name", "address", "city", "state", "zip", "phone", "measure",
        ],
        EdtFlavor::Movies => &[
            "id", "name", "year", "director", "genre", "duration", "rating",
        ],
        EdtFlavor::Rayyan => &["id", "title", "journal", "year", "pages", "issn"],
        EdtFlavor::Tax => &[
            "fname", "lname", "gender", "area", "phone", "city", "state", "zip", "salary", "rate",
        ],
    };
    cols.iter().map(|s| s.to_string()).collect()
}

fn clean_row(flavor: EdtFlavor, i: usize, rng: &mut StdRng) -> Record {
    match flavor {
        EdtFlavor::Beers => Record::new(vec![
            ("id".to_string(), format!("{}", 1000 + i)),
            (
                "beer_name".to_string(),
                format!("{} {}", pick(BEER_ADJS, rng), pick(BEER_NOUNS, rng)),
            ),
            ("style".to_string(), pick(BEER_STYLES, rng).to_string()),
            (
                "abv".to_string(),
                format!("{:.1}", rng.random_range(3.5..12.0f32)),
            ),
            (
                "ibu".to_string(),
                format!("{}", rng.random_range(10..110u32)),
            ),
            (
                "brewery".to_string(),
                format!("{} {}", pick(BEER_NOUNS, rng), pick(BREWERY_SUFFIXES, rng)),
            ),
            ("city".to_string(), pick(CITIES, rng).to_string()),
            ("state".to_string(), pick(STATES, rng).to_string()),
        ]),
        EdtFlavor::Hospital => Record::new(vec![
            ("provider".to_string(), format!("{}", 10000 + i)),
            (
                "name".to_string(),
                format!("{} general hospital", pick(CITIES, rng)),
            ),
            (
                "address".to_string(),
                format!(
                    "{} {} {}",
                    rng.random_range(1..9999u32),
                    pick(STREET_NAMES, rng),
                    pick(STREET_SUFFIXES, rng)
                ),
            ),
            ("city".to_string(), pick(CITIES, rng).to_string()),
            ("state".to_string(), pick(STATES, rng).to_string()),
            ("zip".to_string(), zip(rng)),
            ("phone".to_string(), phone(rng, true)),
            ("measure".to_string(), pick(MEASURES, rng).to_string()),
        ]),
        EdtFlavor::Movies => Record::new(vec![
            ("id".to_string(), format!("tt{:06}", 100000 + i)),
            (
                "name".to_string(),
                format!("the {} {}", pick(MOVIE_WORDS, rng), pick(MOVIE_WORDS, rng)),
            ),
            (
                "year".to_string(),
                format!("{}", rng.random_range(1960..2021u32)),
            ),
            (
                "director".to_string(),
                format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng)),
            ),
            ("genre".to_string(), pick(GENRES, rng).to_string()),
            (
                "duration".to_string(),
                format!("{} min", rng.random_range(70..200u32)),
            ),
            (
                "rating".to_string(),
                format!("{:.1}", rng.random_range(2.0..9.9f32)),
            ),
        ]),
        EdtFlavor::Rayyan => Record::new(vec![
            ("id".to_string(), format!("{}", 2000 + i)),
            (
                "title".to_string(),
                format!(
                    "{} {} in {}",
                    pick(TITLE_WORDS, rng),
                    pick(TITLE_WORDS, rng),
                    pick(MEDICAL_FIELDS, rng)
                ),
            ),
            (
                "journal".to_string(),
                format!(
                    "{} of {}",
                    pick(JOURNAL_WORDS, rng),
                    pick(MEDICAL_FIELDS, rng)
                ),
            ),
            (
                "year".to_string(),
                format!("{}", rng.random_range(1990..2021u32)),
            ),
            ("pages".to_string(), {
                let a = rng.random_range(1..800u32);
                format!("{a}-{}", a + rng.random_range(2..20u32))
            }),
            (
                "issn".to_string(),
                format!(
                    "{:04}-{:04}",
                    rng.random_range(1000..9999u32),
                    rng.random_range(1000..9999u32)
                ),
            ),
        ]),
        EdtFlavor::Tax => {
            // FD: area code is a function of (city, state); rate of salary band.
            let city_i = rng.random_range(0..CITIES.len());
            let salary = rng.random_range(20..200u32) * 1000;
            let rate = match salary {
                s if s < 50000 => "0.12",
                s if s < 100000 => "0.22",
                s if s < 150000 => "0.30",
                _ => "0.35",
            };
            Record::new(vec![
                ("fname".to_string(), pick(FIRST_NAMES, rng).to_string()),
                ("lname".to_string(), pick(LAST_NAMES, rng).to_string()),
                (
                    "gender".to_string(),
                    if rng.random_bool(0.5) {
                        "m".into()
                    } else {
                        "f".into()
                    },
                ),
                ("area".to_string(), format!("{}", 200 + (city_i * 7) % 700)),
                ("phone".to_string(), phone(rng, false)),
                ("city".to_string(), CITIES[city_i].to_string()),
                (
                    "state".to_string(),
                    STATES[city_i % STATES.len()].to_string(),
                ),
                ("zip".to_string(), zip(rng)),
                ("salary".to_string(), format!("{salary}")),
                ("rate".to_string(), rate.to_string()),
            ])
        }
    }
}

// ---------------------------------------------------------------------------
// Error injection
// ---------------------------------------------------------------------------

fn inject(flavor: EdtFlavor, row: &mut Record, col: usize, rng: &mut StdRng) -> ErrorKind {
    let (attr, value) = row.attrs[col].clone();
    let kind = match rng.random_range(0..4u8) {
        0 => ErrorKind::Typo,
        1 => ErrorKind::Format,
        2 => ErrorKind::Missing,
        _ => ErrorKind::Violation,
    };
    let new_value = match kind {
        ErrorKind::Typo => {
            let t = typo(&value, rng);
            if t == value {
                format!("{value}x")
            } else {
                t
            }
        }
        ErrorKind::Format => {
            if attr == "phone" {
                break_phone(&value, rng)
            } else if value.contains(' ') {
                squash(&value)
            } else {
                // Upper-case a value in an all-lowercase column.
                format!("{}{}", value.to_uppercase(), rng.random_range(0..10u8))
            }
        }
        ErrorKind::Missing => (*pick(&["", "n/a", "null", "-", "unknown"], rng)).to_string(),
        ErrorKind::Violation => out_of_domain(flavor, &attr, rng),
    };
    row.attrs[col].1 = new_value;
    kind
}

/// A value from the wrong domain for the column: breaks the column's value
/// pattern (and, for `tax.rate`, the salary→rate FD).
fn out_of_domain(flavor: EdtFlavor, attr: &str, rng: &mut StdRng) -> String {
    match attr {
        "year" => format!("{}", rng.random_range(2200..3000u32)),
        "abv" => format!("{:.1}", rng.random_range(40.0..95.0f32)),
        "ibu" => format!("{}", rng.random_range(500..2000u32)),
        "rating" => format!("{:.1}", rng.random_range(15.0..99.0f32)),
        "duration" => format!("{} min", rng.random_range(900..5000u32)),
        "rate" => "0.99".to_string(),
        "salary" => format!("{}", rng.random_range(1..20u32)),
        "state" => pick(CITIES, rng).to_string(),
        "zip" => format!("{}", rng.random_range(1..999u32)),
        "gender" => format!("{}", rng.random_range(0..9u8)),
        _ => {
            // Swap in a value from an unrelated column's domain.
            match flavor {
                EdtFlavor::Beers => pick(GENRES, rng).to_string(),
                EdtFlavor::Hospital => pick(BEER_STYLES, rng).to_string(),
                EdtFlavor::Movies => pick(MEASURES, rng).to_string(),
                EdtFlavor::Rayyan => pick(BEER_NOUNS, rng).to_string(),
                EdtFlavor::Tax => pick(MOVIE_WORDS, rng).to_string(),
            }
        }
    }
}

/// Generate an EDT dataset for `flavor` under `cfg`.
pub fn generate(flavor: EdtFlavor, cfg: &EdtConfig) -> EdtDataset {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (flavor.name().len() as u64) << 8 ^ flavor as u64);
    let n_rows = cfg.rows.unwrap_or_else(|| flavor.default_rows());
    let cols = columns(flavor);
    let mut rows: Vec<Record> = (0..n_rows)
        .map(|i| clean_row(flavor, i, &mut rng))
        .collect();
    let mut mask = vec![vec![false; cols.len()]; n_rows];
    let mut kinds = vec![vec![None; cols.len()]; n_rows];

    let total_cells = n_rows * cols.len();
    let n_errors = (total_cells as f32 * cfg.error_rate).round() as usize;
    let mut cells: Vec<(usize, usize)> = (0..n_rows)
        .flat_map(|r| (0..cols.len()).map(move |c| (r, c)))
        .collect();
    shuffle(&mut cells, &mut rng);
    for &(r, c) in cells.iter().take(n_errors) {
        let kind = inject(flavor, &mut rows[r], c, &mut rng);
        mask[r][c] = true;
        kinds[r][c] = Some(kind);
    }

    let mut row_ids: Vec<usize> = (0..n_rows).collect();
    shuffle(&mut row_ids, &mut rng);
    let test_rows = row_ids[..cfg.test_tuples.min(n_rows)].to_vec();

    EdtDataset {
        name: flavor.name().to_string(),
        flavor,
        columns: cols,
        rows,
        mask,
        kinds,
        test_rows,
        context: cfg.context,
    }
}

/// Generate all five EDT datasets with one config.
pub fn all_edt_datasets(cfg: &EdtConfig) -> Vec<EdtDataset> {
    EdtFlavor::ALL.iter().map(|&f| generate(f, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_count_matches_rate() {
        let cfg = EdtConfig::default();
        let d = generate(EdtFlavor::Beers, &cfg);
        let total = d.rows.len() * d.columns.len();
        let expected = (total as f32 * cfg.error_rate).round() as usize;
        assert_eq!(d.num_errors(), expected);
    }

    #[test]
    fn mask_aligns_with_injected_cells() {
        let d = generate(EdtFlavor::Movies, &EdtConfig::default());
        for r in 0..d.rows.len() {
            for c in 0..d.columns.len() {
                assert_eq!(d.mask[r][c], d.kinds[r][c].is_some());
            }
        }
    }

    #[test]
    fn test_rows_are_distinct_and_sized() {
        let d = generate(EdtFlavor::Tax, &EdtConfig::default());
        assert_eq!(d.test_rows.len(), 20);
        let mut sorted = d.test_rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn task_split_partitions_cells() {
        let d = generate(EdtFlavor::Rayyan, &EdtConfig::default());
        let t = d.to_task();
        let total = d.rows.len() * d.columns.len();
        assert_eq!(t.train_pool.len() + t.test.len(), total);
        assert_eq!(t.test.len(), 20 * d.columns.len());
    }

    #[test]
    fn context_serialization_includes_sep() {
        let cfg = EdtConfig {
            context: true,
            ..Default::default()
        };
        let d = generate(EdtFlavor::Hospital, &cfg);
        let t = d.to_task();
        assert!(t.train_pool[0].tokens.contains(&"[SEP]".to_string()));
    }

    #[test]
    fn context_independent_has_no_sep() {
        let d = generate(EdtFlavor::Hospital, &EdtConfig::default());
        let t = d.to_task();
        assert!(!t.train_pool[0].tokens.contains(&"[SEP]".to_string()));
    }

    #[test]
    fn tax_fd_holds_on_clean_cells() {
        let d = generate(EdtFlavor::Tax, &EdtConfig::default());
        for (r, row) in d.rows.iter().enumerate() {
            let sal_col = d.columns.iter().position(|c| c == "salary").unwrap();
            let rate_col = d.columns.iter().position(|c| c == "rate").unwrap();
            if d.mask[r][sal_col] || d.mask[r][rate_col] {
                continue;
            }
            let salary: u32 = row.get("salary").unwrap().parse().unwrap();
            let rate = row.get("rate").unwrap();
            let expected = match salary {
                s if s < 50000 => "0.12",
                s if s < 100000 => "0.22",
                s if s < 150000 => "0.30",
                _ => "0.35",
            };
            assert_eq!(rate, expected, "FD violated on clean row {r}");
        }
    }

    #[test]
    fn all_flavors_generate() {
        let cfg = EdtConfig {
            rows: Some(40),
            ..Default::default()
        };
        let all = all_edt_datasets(&cfg);
        assert_eq!(all.len(), 5);
        for d in &all {
            assert!(d.num_errors() > 0);
        }
    }
}
