//! Synthetic text-classification benchmark generators.
//!
//! Eight flavors mirroring Table 7: same class counts and class semantics,
//! generated from per-class template grammars with shared connective
//! vocabulary (so classes overlap lexically and the task is learnable but
//! not trivial at low resource).

use crate::perturb::pick;
use crate::task::{shuffle, TaskDataset, TaskKind};
use crate::words::*;
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::example::Example;
use rotom_text::tokenize;

/// The eight TextCLS flavors of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextClsFlavor {
    /// AG news topics (4 classes).
    Ag,
    /// Amazon review sentiment, binary.
    Am2,
    /// Amazon review sentiment, 5 stars.
    Am5,
    /// Airline reservation intents (24 classes).
    Atis,
    /// Voice-assistant intents (7 classes).
    Snips,
    /// Movie review sentiment, binary.
    Sst2,
    /// Movie review sentiment, 5 grades.
    Sst5,
    /// Open-domain question intents (6 classes).
    Trec,
}

impl TextClsFlavor {
    /// All flavors in Table 7 order.
    pub const ALL: [TextClsFlavor; 8] = [
        TextClsFlavor::Ag,
        TextClsFlavor::Am2,
        TextClsFlavor::Am5,
        TextClsFlavor::Atis,
        TextClsFlavor::Snips,
        TextClsFlavor::Sst2,
        TextClsFlavor::Sst5,
        TextClsFlavor::Trec,
    ];

    /// Canonical dataset name.
    pub fn name(self) -> &'static str {
        match self {
            TextClsFlavor::Ag => "AG",
            TextClsFlavor::Am2 => "AM-2",
            TextClsFlavor::Am5 => "AM-5",
            TextClsFlavor::Atis => "ATIS",
            TextClsFlavor::Snips => "SNIPS",
            TextClsFlavor::Sst2 => "SST-2",
            TextClsFlavor::Sst5 => "SST-5",
            TextClsFlavor::Trec => "TREC",
        }
    }

    /// Number of classes (Table 7).
    pub fn num_classes(self) -> usize {
        match self {
            TextClsFlavor::Ag => 4,
            TextClsFlavor::Am2 | TextClsFlavor::Sst2 => 2,
            TextClsFlavor::Am5 | TextClsFlavor::Sst5 => 5,
            TextClsFlavor::Atis => 24,
            TextClsFlavor::Snips => 7,
            TextClsFlavor::Trec => 6,
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TextClsConfig {
    /// Size of the train pool (experiments sample 100–500 from it).
    pub train_pool: usize,
    /// Test-set size.
    pub test: usize,
    /// Extra unlabeled sequences for InvDA / SSL.
    pub unlabeled: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TextClsConfig {
    fn default() -> Self {
        Self {
            train_pool: 1200,
            test: 400,
            unlabeled: 800,
            seed: 21,
        }
    }
}

/// Generate a TextCLS dataset for `flavor` under `cfg`.
pub fn generate(flavor: TextClsFlavor, cfg: &TextClsConfig) -> TaskDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (flavor as u64) << 16);
    let k = flavor.num_classes();
    let total = cfg.train_pool + cfg.test + cfg.unlabeled;
    let mut examples: Vec<Example> = Vec::with_capacity(total);
    for i in 0..total {
        let class = i % k;
        let text = render(flavor, class, &mut rng);
        examples.push(Example::new(tokenize(&text), class));
    }
    shuffle(&mut examples, &mut rng);
    let mut train_pool = examples;
    let mut rest = train_pool.split_off(cfg.train_pool);
    let test = rest.split_off(rest.len() - cfg.test.min(rest.len()));
    let unlabeled = rest.into_iter().map(|e| e.tokens).collect();
    TaskDataset {
        name: flavor.name().to_string(),
        kind: TaskKind::TextClassification,
        num_classes: k,
        train_pool,
        test,
        unlabeled,
    }
}

/// Generate all eight TextCLS datasets with one config.
pub fn all_textcls_tasks(cfg: &TextClsConfig) -> Vec<TaskDataset> {
    TextClsFlavor::ALL
        .iter()
        .map(|&f| generate(f, cfg))
        .collect()
}

// ---------------------------------------------------------------------------
// Per-flavor grammars
// ---------------------------------------------------------------------------

fn render(flavor: TextClsFlavor, class: usize, rng: &mut StdRng) -> String {
    match flavor {
        TextClsFlavor::Ag => ag(class, rng),
        TextClsFlavor::Am2 => review(class, 2, false, rng),
        TextClsFlavor::Am5 => review(class, 5, false, rng),
        TextClsFlavor::Sst2 => review(class, 2, true, rng),
        TextClsFlavor::Sst5 => review(class, 5, true, rng),
        TextClsFlavor::Trec => trec(class, rng),
        TextClsFlavor::Atis => atis(class, rng),
        TextClsFlavor::Snips => snips(class, rng),
    }
}

fn ag(class: usize, rng: &mut StdRng) -> String {
    let topic = AG_TOPIC_WORDS[class];
    let w1 = pick(topic, rng);
    let w2 = pick(topic, rng);
    let verbs = [
        "announces",
        "reports",
        "faces",
        "plans",
        "confirms",
        "reveals",
        "warns of",
    ];
    let v = pick(&verbs, rng);
    match rng.random_range(0..3u8) {
        0 => format!("{w1} {v} new {w2} move"),
        1 => format!("officials say {w1} {v} record {w2} this week"),
        _ => format!("{w1} and {w2} in focus as analysts weigh outlook"),
    }
}

/// Graded sentiment reviews. `movie` selects movie-domain nouns; otherwise
/// product-domain. Binary uses the strong halves of the pools; 5-class maps
/// star → intensity band, with class `k/2` rendered as mixed.
fn review(class: usize, k: usize, movie: bool, rng: &mut StdRng) -> String {
    let noun_pool: Vec<&str> = if movie {
        REVIEW_NOUNS[..10].to_vec()
    } else {
        REVIEW_NOUNS[10..].to_vec()
    };
    let noun = noun_pool[rng.random_range(0..noun_pool.len())];
    let noun2 = noun_pool[rng.random_range(0..noun_pool.len())];
    let subject = if movie { "this film" } else { "this product" };

    let band = |adjs: &[&str], strong: bool, rng: &mut StdRng| -> String {
        let half = adjs.len() / 2;
        let slice = if strong { &adjs[half..] } else { &adjs[..half] };
        slice[rng.random_range(0..slice.len())].to_string()
    };

    let (positive, strong, mixed) = if k == 2 {
        (class == 1, true, false)
    } else {
        match class {
            0 => (false, true, false),
            1 => (false, false, false),
            2 => (true, false, true),
            3 => (true, false, false),
            _ => (true, true, false),
        }
    };

    if mixed {
        let p = band(POS_ADJS, false, rng);
        let n = band(NEG_ADJS, false, rng);
        return format!("the {noun} was {p} but the {noun2} felt {n} overall");
    }
    let adj = if positive {
        band(POS_ADJS, strong, rng)
    } else {
        band(NEG_ADJS, strong, rng)
    };
    match rng.random_range(0..4u8) {
        0 => format!("the {noun} of {subject} is {adj}"),
        1 => format!("{subject} has a truly {adj} {noun}"),
        2 => format!("i found the {noun} {adj} and the {noun2} memorable"),
        _ => format!(
            "{adj} {noun} , would {} recommend",
            if positive { "definitely" } else { "not" }
        ),
    }
}

fn trec(class: usize, rng: &mut StdRng) -> String {
    let city = pick(CITIES, rng);
    let first = pick(FIRST_NAMES, rng);
    let last = pick(LAST_NAMES, rng);
    let thing = pick(PRODUCT_TYPES, rng);
    let field = pick(MEDICAL_FIELDS, rng);
    match class {
        // abbreviation
        0 => match rng.random_range(0..2u8) {
            0 => format!("what does the abbreviation {} stand for", pick(STATES, rng)),
            _ => format!(
                "what is the full form of {}",
                pick(&["cpu", "dna", "nasa", "fbi", "sql"], rng)
            ),
        },
        // entity
        1 => match rng.random_range(0..3u8) {
            0 => format!("what {thing} won the award last year"),
            1 => format!("which {} is used in {field}", pick(PRODUCT_TYPES, rng)),
            _ => format!("what breed of dog is the largest"),
        },
        // description
        2 => match rng.random_range(0..3u8) {
            0 => format!("what is {field}"),
            1 => format!("why do people in {city} celebrate the festival"),
            _ => format!("how does a {thing} work"),
        },
        // human
        3 => match rng.random_range(0..3u8) {
            0 => format!("who is {first} {last}"),
            1 => format!("who invented the {thing}"),
            _ => format!("which scientist discovered {field}"),
        },
        // location
        4 => match rng.random_range(0..3u8) {
            0 => format!("where is the {} bowl", pick(COLORS, rng)),
            1 => format!("where is {city} located"),
            _ => format!("what city hosts the {} festival", pick(MOVIE_WORDS, rng)),
        },
        // numeric
        _ => match rng.random_range(0..3u8) {
            0 => format!("how many people live in {city}"),
            1 => format!("when was the {thing} invented"),
            _ => format!("how much does a {thing} cost"),
        },
    }
}

/// 24 ATIS-style airline intents.
fn atis(class: usize, rng: &mut StdRng) -> String {
    let a = pick(CITIES, rng);
    let b = pick(CITIES, rng);
    let day = pick(
        &[
            "monday",
            "tuesday",
            "wednesday",
            "thursday",
            "friday",
            "saturday",
            "sunday",
        ],
        rng,
    );
    let airline = pick(
        &[
            "united",
            "delta",
            "american",
            "alaska",
            "jetblue",
            "southwest",
        ],
        rng,
    );
    let aircraft = pick(
        &["boeing 737", "airbus a320", "embraer 175", "boeing 757"],
        rng,
    );
    match class {
        0 => format!("show me flights from {a} to {b} on {day}"),
        1 => format!("what is the airfare from {a} to {b}"),
        2 => format!("what ground transportation is available in {a}"),
        3 => format!("which airlines fly from {a} to {b}"),
        4 => format!("what does fare code q mean"),
        5 => format!("what type of aircraft is used from {a} to {b}"),
        6 => format!("what time does the flight from {a} arrive"),
        7 => format!("how many flights does {airline} have from {a}"),
        8 => format!("how far is the airport from downtown {a}"),
        9 => format!("what cities does {airline} serve"),
        10 => format!("which airport is closest to {a}"),
        11 => format!("what is the seating capacity of the {aircraft}"),
        12 => format!("what is the flight number from {a} to {b} on {day}"),
        13 => format!("what meals are served on the flight to {b}"),
        14 => format!("what are the restrictions on the cheapest fare to {b}"),
        15 => format!("how much is the taxi fare from the {a} airport"),
        16 => format!("what day of the week do flights from {a} to {b} operate"),
        17 => format!("show me the cheapest flight from {a} to {b}"),
        18 => format!("show me flights and fares from {a} to {b}"),
        19 => format!("i would like to book a round trip from {a} to {b}"),
        20 => format!("cancel my reservation from {a} to {b} on {day}"),
        21 => format!("what is the earliest nonstop flight leaving {a}"),
        22 => format!("does {airline} offer first class from {a} to {b}"),
        _ => format!("list the departure times of all flights to {b} on {day}"),
    }
}

/// 7 SNIPS-style voice-assistant intents.
fn snips(class: usize, rng: &mut StdRng) -> String {
    let artist = format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng));
    let city = pick(CITIES, rng);
    let movie = format!("the {} {}", pick(MOVIE_WORDS, rng), pick(MOVIE_WORDS, rng));
    let n = rng.random_range(1..6u8);
    match class {
        0 => format!("add this song by {artist} to my workout playlist"),
        1 => format!("book a table for {n} at a restaurant in {city}"),
        2 => format!("what is the weather forecast for {city} tomorrow"),
        3 => format!("play some music by {artist}"),
        4 => format!("rate this book {n} out of 5 stars"),
        5 => format!("find the creative work called {movie}"),
        _ => format!("what movies are playing at the {city} theater tonight"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_table7() {
        assert_eq!(TextClsFlavor::Ag.num_classes(), 4);
        assert_eq!(TextClsFlavor::Atis.num_classes(), 24);
        assert_eq!(TextClsFlavor::Snips.num_classes(), 7);
        assert_eq!(TextClsFlavor::Trec.num_classes(), 6);
    }

    #[test]
    fn generated_sizes_match_config() {
        let cfg = TextClsConfig {
            train_pool: 100,
            test: 30,
            unlabeled: 50,
            seed: 1,
        };
        let d = generate(TextClsFlavor::Trec, &cfg);
        assert_eq!(d.train_pool.len(), 100);
        assert_eq!(d.test.len(), 30);
        assert_eq!(d.unlabeled.len(), 50);
    }

    #[test]
    fn all_classes_present_in_pool() {
        let cfg = TextClsConfig {
            train_pool: 240,
            test: 48,
            unlabeled: 0,
            seed: 2,
        };
        for flavor in TextClsFlavor::ALL {
            let d = generate(flavor, &cfg);
            for c in 0..d.num_classes {
                assert!(
                    d.train_pool.iter().any(|e| e.label == c),
                    "{}: class {c} missing",
                    d.name
                );
            }
        }
    }

    #[test]
    fn labels_within_range() {
        let cfg = TextClsConfig::default();
        let d = generate(TextClsFlavor::Atis, &cfg);
        assert!(d.train_pool.iter().all(|e| e.label < 24));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TextClsConfig {
            train_pool: 50,
            test: 10,
            unlabeled: 0,
            seed: 9,
        };
        let a = generate(TextClsFlavor::Sst5, &cfg);
        let b = generate(TextClsFlavor::Sst5, &cfg);
        assert_eq!(a.train_pool[0], b.train_pool[0]);
    }

    #[test]
    fn sentiment_classes_use_different_polarity_words() {
        let cfg = TextClsConfig {
            train_pool: 200,
            test: 0,
            unlabeled: 0,
            seed: 3,
        };
        let d = generate(TextClsFlavor::Am2, &cfg);
        let text_of = |label: usize| {
            d.train_pool
                .iter()
                .filter(|e| e.label == label)
                .flat_map(|e| e.tokens.iter().cloned())
                .collect::<Vec<_>>()
        };
        let neg = text_of(0);
        let pos = text_of(1);
        assert!(pos.iter().any(|t| POS_ADJS.contains(&t.as_str())));
        assert!(neg.iter().any(|t| NEG_ADJS.contains(&t.as_str())));
        // Strong positive adjectives never appear in negative reviews.
        assert!(!neg
            .iter()
            .any(|t| POS_ADJS[POS_ADJS.len() / 2..].contains(&t.as_str())));
    }
}
