//! `rotom-datasets` — synthetic benchmark generators for the three Rotom
//! task families.
//!
//! The paper evaluates on public benchmarks (Tables 6 and 7); offline we
//! regenerate structurally equivalent synthetic datasets:
//!
//! * [`em`] — five entity-matching flavors (plus dirty variants): record
//!   pairs rendered from shared latent entities by two noisy "sources",
//!   with blocking-style hard negatives.
//! * [`edt`] — five error-detection flavors: domain-grammar spreadsheets
//!   with injected errors from the Raha taxonomy and exact ground-truth
//!   masks.
//! * [`textcls`] — eight text-classification flavors with Table 7's class
//!   counts, generated from per-class template grammars.
//!
//! All generators are deterministic per seed and emit the common
//! [`TaskDataset`] sequence-classification form. [`csv`] exports the
//! generated benchmarks in the CSV shape the real suites ship in.
//!
//! [`blocking`] scales the EM candidate-generation step to million-record
//! collections: a sharded IDF-pruned inverted index with an optional
//! minhash/LSH tier and a streaming bounded-memory pipeline.

#![warn(missing_docs)]

pub mod blocking;
pub mod csv;
pub mod edt;
pub mod em;
pub mod perturb;
pub mod task;
pub mod textcls;
pub mod words;

pub use blocking::{
    stream_candidates, stream_candidates_channel, BlockingConfig, BlockingStats, IndexBuilder,
    IndexStats, LshParams, ShardedIndex,
};
pub use edt::{EdtConfig, EdtDataset, EdtFlavor};
pub use em::{CorpusConfig, CorpusSide, EmConfig, EmCorpus, EmDataset, EmFlavor, LabeledPair};
pub use task::{TaskDataset, TaskKind};
pub use textcls::{TextClsConfig, TextClsFlavor};
