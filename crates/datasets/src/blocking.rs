//! Blocking plane: scalable candidate generation for million-record EM.
//!
//! The paper's EM datasets arrive pre-blocked at Table-6 sizes; production
//! EM over millions of records is bottlenecked on *candidate generation*,
//! not scoring (§2.1: "the blocking phase typically uses simple
//! heuristics"). This module scales [`crate::em::block_candidates`]'s
//! token-overlap semantics to that regime:
//!
//! * **Sharded inverted token index** — tokens are assigned to shards by
//!   token hash, so shards build pool-parallel and posting lists stay
//!   shard-local. A candidate's shared-token count is split across shards;
//!   the query path merges per-shard partial counts before thresholding, so
//!   the sharded result is *bit-identical* to the single-shard path at any
//!   shard or worker count.
//! * **IDF pruning** — posting lists whose document frequency exceeds
//!   [`BlockingConfig::df_ceiling`] are dropped (the df comes straight from
//!   posting-list lengths via [`rotom_text::IdfIndex::from_doc_freqs`]).
//!   This bounds per-token posting lists and kills the stopword quadratic
//!   blowup: without it, one token present in every record makes each probe
//!   touch the whole corpus.
//! * **MinHash/LSH banding second tier** — per-record minhash signatures
//!   (splitmix64 hash streams seeded from [`BlockingConfig::seed`]) are
//!   banded into buckets; records colliding in any band become candidates
//!   regardless of which tokens were pruned, recovering high-similarity
//!   pairs the pruned token tier misses.
//! * **Streaming pipeline** — left records are ingested in bounded chunks
//!   (e.g. [`crate::em::EmCorpus::chunks`] or [`crate::csv::table_chunks`]),
//!   candidates are flushed to the caller's sink whenever the buffer reaches
//!   [`BlockingConfig::max_buffered_pairs`], and
//!   [`stream_candidates_channel`] decouples production from consumption
//!   through a bounded channel. Peak memory is O(shards + chunk), never
//!   O(candidates).

use crate::em::content_token_list;
use rotom_nn::RotomPool;
use rotom_rng::splitmix64;
use rotom_text::{IdfIndex, Record};
use std::collections::HashMap;
use std::sync::mpsc;

/// MinHash/LSH banding parameters. The signature has `bands * rows` hashes;
/// two records collide when all `rows` hashes of any band agree, so the
/// catch probability for Jaccard similarity `j` is `1 - (1 - j^rows)^bands`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshParams {
    /// Number of bands (each band is one bucket table).
    pub bands: usize,
    /// MinHash rows per band.
    pub rows: usize,
    /// Buckets holding more than this many records are skipped at probe
    /// time. Corpus-wide shared tokens (stopwords) drag every record's
    /// minhash toward the same few values, merging huge fractions of the
    /// collection into a handful of mega-buckets; probing those degenerates
    /// to a corpus scan, exactly the blowup the df ceiling kills in the
    /// token tier. A mega-bucket carries no similarity signal, so skipping
    /// it costs almost no recall.
    pub max_bucket: usize,
}

impl Default for LshParams {
    fn default() -> Self {
        // 8 bands x 2 rows: catches ~90% of pairs at jaccard 0.5, ~99.6% at
        // 0.7, while pairs below 0.2 almost never collide.
        Self {
            bands: 8,
            rows: 2,
            max_bucket: 256,
        }
    }
}

/// Configuration of the blocking pipeline.
#[derive(Debug, Clone)]
pub struct BlockingConfig {
    /// Candidate threshold: pairs sharing at least this many content tokens
    /// are emitted by the token tier. `0` means *no blocking* — every
    /// `(left, right)` pair is a candidate, mirroring
    /// [`crate::em::blocked`]'s trivially-true semantics at 0 (only sensible
    /// for tiny collections).
    pub min_shared: usize,
    /// Document-frequency ceiling: tokens present in more than this many
    /// indexed records are pruned from the token tier. `None` keeps
    /// everything (exact [`crate::em::block_candidates`] semantics).
    pub df_ceiling: Option<usize>,
    /// Number of token-hash shards (clamped to at least 1).
    pub num_shards: usize,
    /// MinHash/LSH second tier; `None` disables it.
    pub lsh: Option<LshParams>,
    /// Candidate pairs buffered before the streaming driver flushes to its
    /// sink. The observed peak never exceeds this by more than one record's
    /// candidate list ([`BlockingStats::peak_buffered_pairs`]).
    pub max_buffered_pairs: usize,
    /// Capacity (in flushed batches) of [`stream_candidates_channel`]'s
    /// bounded channel.
    pub channel_batches: usize,
    /// Seed of the minhash hash streams.
    pub seed: u64,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        Self {
            min_shared: 2,
            df_ceiling: None,
            num_shards: 8,
            lsh: None,
            max_buffered_pairs: 1 << 16,
            channel_batches: 4,
            seed: 0x510c,
        }
    }
}

/// FNV-1a 64-bit hash of a token — the shard-assignment and minhash base
/// hash. Fixed algorithm: changing it re-shards every index.
#[inline]
fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shard owning a token hash: multiply-shift map of the hash onto
/// `0..num_shards` (uniform, avoids modulo bias on low bits).
#[inline]
fn token_shard(hash: u64, num_shards: usize) -> usize {
    (((hash as u128) * (num_shards as u128)) >> 64) as usize
}

/// Per-band bucket keys of one record's minhash signature. Records with no
/// content tokens get no signature (they cannot match anything lexically).
fn band_keys(tokens: &[String], params: LshParams, seed: u64) -> Vec<u64> {
    if tokens.is_empty() {
        return Vec::new();
    }
    let nh = params.bands * params.rows;
    let mut sig = vec![u64::MAX; nh];
    for t in tokens {
        let th = fnv1a64(t);
        for (h, slot) in sig.iter_mut().enumerate() {
            // One splitmix step per (token, hash-index): an independent
            // permutation family keyed on the pipeline seed.
            let mut s = seed ^ th ^ ((h as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let v = splitmix64(&mut s);
            if v < *slot {
                *slot = v;
            }
        }
    }
    (0..params.bands)
        .map(|b| {
            let mut key = 0x100_0000_01b3u64 ^ (b as u64) << 32;
            for r in 0..params.rows {
                let mut s = key ^ sig[b * params.rows + r];
                key = splitmix64(&mut s);
            }
            key
        })
        .collect()
}

/// One token shard: posting lists for the tokens it owns (record ids
/// ascending, by construction of the chunked build).
#[derive(Debug, Default, Clone)]
struct Shard {
    postings: HashMap<String, Vec<u32>>,
}

/// Index-build statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStats {
    /// Records indexed.
    pub records: usize,
    /// Distinct tokens kept in the token tier.
    pub tokens_kept: usize,
    /// Distinct tokens dropped by the df ceiling.
    pub tokens_pruned: usize,
    /// Posting entries kept.
    pub postings_kept: usize,
    /// Posting entries dropped with pruned tokens — the per-probe scan work
    /// the ceiling avoids.
    pub postings_pruned: usize,
}

/// Streaming builder for [`ShardedIndex`]: feed the right-hand collection in
/// bounded chunks, then [`finish`](IndexBuilder::finish). Records are
/// assigned ids in feed order.
pub struct IndexBuilder {
    cfg: BlockingConfig,
    shards: Vec<Shard>,
    lsh_entries: Option<Vec<Vec<(u64, u32)>>>,
    num_records: usize,
}

impl IndexBuilder {
    /// Start an empty index under `cfg`.
    pub fn new(cfg: BlockingConfig) -> Self {
        let num_shards = cfg.num_shards.max(1);
        let lsh_entries = cfg.lsh.map(|p| vec![Vec::new(); p.bands]);
        Self {
            cfg: BlockingConfig { num_shards, ..cfg },
            shards: vec![Shard::default(); num_shards],
            lsh_entries,
            num_records: 0,
        }
    }

    /// Index one chunk of records (tokenization fans out over `pool`).
    pub fn add_chunk(&mut self, records: &[Record], pool: &RotomPool) {
        let tokens: Vec<Vec<String>> = pool.map(records.len(), |i| content_token_list(&records[i]));
        self.add_token_chunk(&tokens, pool);
    }

    /// Index one chunk of pre-tokenized records (sorted deduplicated content
    /// tokens, as produced by [`content_token_list`]).
    pub fn add_token_chunk(&mut self, tokens: &[Vec<String>], pool: &RotomPool) {
        let base = u32::try_from(self.num_records).expect("index capped at u32 records");
        let ns = self.cfg.num_shards;
        // Pool-parallel over shards: each worker walks the whole chunk and
        // claims the tokens hashing into its shard, so shard maps build with
        // no locks and posting lists stay in ascending record order.
        let partials: Vec<HashMap<&str, Vec<u32>>> = pool.map(ns, |s| {
            let mut m: HashMap<&str, Vec<u32>> = HashMap::new();
            for (i, ts) in tokens.iter().enumerate() {
                for t in ts {
                    if token_shard(fnv1a64(t), ns) == s {
                        m.entry(t.as_str()).or_default().push(base + i as u32);
                    }
                }
            }
            m
        });
        for (shard, part) in self.shards.iter_mut().zip(partials) {
            for (t, mut ids) in part {
                match shard.postings.get_mut(t) {
                    Some(list) => list.append(&mut ids),
                    None => {
                        shard.postings.insert(t.to_string(), ids);
                    }
                }
            }
        }
        if let (Some(entries), Some(params)) = (self.lsh_entries.as_mut(), self.cfg.lsh) {
            let seed = self.cfg.seed;
            let keys: Vec<Vec<u64>> =
                pool.map(tokens.len(), |i| band_keys(&tokens[i], params, seed));
            for (i, ks) in keys.iter().enumerate() {
                for (band, &k) in ks.iter().enumerate() {
                    entries[band].push((k, base + i as u32));
                }
            }
        }
        self.num_records += tokens.len();
    }

    /// Seal the index: apply the df ceiling, derive the [`IdfIndex`] from
    /// posting-list lengths, and sort the LSH bucket tables.
    pub fn finish(self) -> ShardedIndex {
        let mut stats = IndexStats {
            records: self.num_records,
            ..Default::default()
        };
        let ceiling = self.cfg.df_ceiling.unwrap_or(usize::MAX);
        // Posting-list lengths are document frequencies (tokens are unique
        // per record): the IdfIndex falls out of the build for free.
        let mut df: HashMap<String, usize> = HashMap::new();
        for shard in &self.shards {
            for (t, list) in &shard.postings {
                df.insert(t.clone(), list.len());
            }
        }
        let idf = IdfIndex::from_doc_freqs(df, self.num_records);
        let mut shards = self.shards;
        for shard in &mut shards {
            shard.postings.retain(|_, list| {
                if list.len() > ceiling {
                    stats.tokens_pruned += 1;
                    stats.postings_pruned += list.len();
                    false
                } else {
                    stats.tokens_kept += 1;
                    stats.postings_kept += list.len();
                    true
                }
            });
        }
        let lsh = self.cfg.lsh.map(|params| {
            let mut bands: Vec<Vec<(u64, u32)>> = self.lsh_entries.unwrap_or_default();
            for band in &mut bands {
                // Sort by (bucket, id): buckets become contiguous runs
                // binary-searchable at probe time, ids stay ascending.
                band.sort_unstable();
            }
            LshIndex { params, bands }
        });
        ShardedIndex {
            cfg: self.cfg,
            shards,
            lsh,
            idf,
            stats,
        }
    }
}

/// The LSH band tables: per band, `(bucket_key, record_id)` sorted by key —
/// flat arrays instead of per-bucket `Vec`s, because at 1M records the
/// allocator overhead of a million tiny `Vec`s dominates the index.
#[derive(Debug, Clone)]
struct LshIndex {
    params: LshParams,
    bands: Vec<Vec<(u64, u32)>>,
}

impl LshIndex {
    /// Record ids colliding with `tokens` in any band (sorted,
    /// deduplicated). Buckets larger than [`LshParams::max_bucket`] are
    /// skipped — see that field for why mega-buckets are noise, not signal.
    fn probe(&self, tokens: &[String], seed: u64) -> Vec<u32> {
        let keys = band_keys(tokens, self.params, seed);
        let mut out = Vec::new();
        for (band, &key) in self.bands.iter().zip(&keys) {
            let start = band.partition_point(|&(k, _)| k < key);
            let end = start + band[start..].partition_point(|&(k, _)| k == key);
            if end - start <= self.params.max_bucket {
                out.extend(band[start..end].iter().map(|&(_, id)| id));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A sealed sharded blocking index over one record collection (the "right"
/// side). Queries are read-only and thread-safe.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    cfg: BlockingConfig,
    shards: Vec<Shard>,
    lsh: Option<LshIndex>,
    idf: IdfIndex,
    stats: IndexStats,
}

impl ShardedIndex {
    /// Build in one call from a full record slice (convenience for tests and
    /// small collections; large builds should feed [`IndexBuilder`] in
    /// chunks).
    pub fn build(records: &[Record], cfg: BlockingConfig, pool: &RotomPool) -> Self {
        let mut b = IndexBuilder::new(cfg);
        b.add_chunk(records, pool);
        b.finish()
    }

    /// Number of records indexed.
    pub fn num_records(&self) -> usize {
        self.stats.records
    }

    /// Build statistics (pruning counts).
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Configuration the index was built under.
    pub fn config(&self) -> &BlockingConfig {
        &self.cfg
    }

    /// The corpus IDF statistics derived from the build (document
    /// frequencies of *all* tokens, including pruned ones).
    pub fn idf(&self) -> &IdfIndex {
        &self.idf
    }

    /// Candidate record ids for one chunk of pre-tokenized left records:
    /// `out[i]` is the sorted deduplicated candidate list for `left[i]`.
    ///
    /// Stage 1 fans out over shards (each shard probes its own posting
    /// lists and emits per-left partial counts); stage 2 fans out over left
    /// records (summing per-shard counts, thresholding, and unioning the
    /// LSH tier). Both stages are order-independent sums followed by a sort,
    /// so the result is bit-identical at any shard or worker count.
    pub fn candidates_for_tokens(&self, left: &[Vec<String>], pool: &RotomPool) -> Vec<Vec<u32>> {
        let n = self.stats.records;
        if self.cfg.min_shared == 0 {
            // Documented "no blocking" semantics: the full cross product.
            return left.iter().map(|_| (0..n as u32).collect()).collect();
        }
        let ns = self.cfg.num_shards;
        // Stage 1: per-shard partial counts, flat per shard with per-left
        // offsets (one allocation per shard, not per (shard, left)).
        let partials: Vec<(Vec<u32>, Vec<(u32, u32)>)> = pool.map(ns, |s| {
            let shard = &self.shards[s];
            let mut offsets = Vec::with_capacity(left.len() + 1);
            let mut flat: Vec<(u32, u32)> = Vec::new();
            let mut counts: HashMap<u32, u32> = HashMap::new();
            offsets.push(0u32);
            for ts in left {
                counts.clear();
                for t in ts {
                    if token_shard(fnv1a64(t), ns) == s {
                        if let Some(js) = shard.postings.get(t.as_str()) {
                            for &j in js {
                                *counts.entry(j).or_insert(0) += 1;
                            }
                        }
                    }
                }
                flat.extend(counts.iter().map(|(&j, &c)| (j, c)));
                offsets.push(flat.len() as u32);
            }
            (offsets, flat)
        });
        // LSH tier: probe pool-parallel over left records.
        let lsh_hits: Option<Vec<Vec<u32>>> = self
            .lsh
            .as_ref()
            .map(|l| pool.map(left.len(), |i| l.probe(&left[i], self.cfg.seed)));
        // Stage 2: merge per left record.
        let min_shared = self.cfg.min_shared as u32;
        pool.map(left.len(), |i| {
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for (offsets, flat) in &partials {
                let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
                for &(j, c) in &flat[lo..hi] {
                    *counts.entry(j).or_insert(0) += c;
                }
            }
            let mut out: Vec<u32> = counts
                .into_iter()
                .filter(|&(_, c)| c >= min_shared)
                .map(|(j, _)| j)
                .collect();
            if let Some(hits) = &lsh_hits {
                out.extend_from_slice(&hits[i]);
            }
            out.sort_unstable();
            out.dedup();
            out
        })
    }

    /// Candidate ids for one chunk of records (tokenizes over `pool`, then
    /// [`candidates_for_tokens`](Self::candidates_for_tokens)).
    pub fn candidates_for_records(&self, left: &[Record], pool: &RotomPool) -> Vec<Vec<u32>> {
        let tokens: Vec<Vec<String>> = pool.map(left.len(), |i| content_token_list(&left[i]));
        self.candidates_for_tokens(&tokens, pool)
    }
}

/// Statistics of one streaming run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockingStats {
    /// Left records streamed.
    pub left_records: usize,
    /// Chunks ingested.
    pub chunks: usize,
    /// Candidate pairs emitted.
    pub candidates: u64,
    /// Largest candidate buffer observed before a flush — bounded by
    /// `max_buffered_pairs` plus one record's candidate list, independent of
    /// total candidate count.
    pub peak_buffered_pairs: usize,
}

/// Stream candidate pairs for `left` chunks against `index`, flushing
/// `(left_id, right_id)` batches to `sink` whenever the buffer reaches
/// [`BlockingConfig::max_buffered_pairs`]. Left ids number records in
/// stream order. Pairs arrive sorted within and across batches, so the
/// concatenation of all batches equals [`crate::em::block_candidates`]'s
/// sorted output when the config is exact (no pruning, no LSH).
pub fn stream_candidates<I, F>(
    index: &ShardedIndex,
    chunks: I,
    pool: &RotomPool,
    mut sink: F,
) -> BlockingStats
where
    I: IntoIterator<Item = Vec<Record>>,
    F: FnMut(&[(usize, usize)]),
{
    let mut stats = BlockingStats::default();
    let mut buf: Vec<(usize, usize)> = Vec::new();
    let cap = index.cfg.max_buffered_pairs.max(1);
    for records in chunks {
        let per_left = index.candidates_for_records(&records, pool);
        for (i, rights) in per_left.iter().enumerate() {
            let left_id = stats.left_records + i;
            buf.extend(rights.iter().map(|&j| (left_id, j as usize)));
            stats.peak_buffered_pairs = stats.peak_buffered_pairs.max(buf.len());
            if buf.len() >= cap {
                stats.candidates += buf.len() as u64;
                sink(&buf);
                buf.clear();
            }
        }
        stats.left_records += records.len();
        stats.chunks += 1;
    }
    if !buf.is_empty() {
        stats.candidates += buf.len() as u64;
        sink(&buf);
    }
    stats
}

/// [`stream_candidates`] with production and consumption decoupled through a
/// bounded channel: a scoped producer thread runs the pipeline (pool
/// fan-out included) and sends flushed batches through a
/// [`BlockingConfig::channel_batches`]-deep channel while the calling
/// thread consumes, so a slow consumer back-pressures the producer instead
/// of buffering unbounded candidates.
pub fn stream_candidates_channel<I, F>(
    index: &ShardedIndex,
    chunks: I,
    pool: &RotomPool,
    mut consume: F,
) -> BlockingStats
where
    I: IntoIterator<Item = Vec<Record>> + Send,
    F: FnMut(Vec<(usize, usize)>),
{
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<Vec<(usize, usize)>>(index.cfg.channel_batches.max(1));
        let producer = scope.spawn(move || {
            stream_candidates(index, chunks, pool, |batch| {
                // A dropped receiver only happens if the consumer panicked;
                // the join below re-raises that, so the send error is moot.
                let _ = tx.send(batch.to_vec());
            })
        });
        for batch in rx {
            consume(batch);
        }
        match producer.join() {
            Ok(stats) => stats,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{self, block_candidates, EmConfig, EmFlavor};

    fn pairs_from_stream(
        index: &ShardedIndex,
        left: &[Record],
        chunk: usize,
    ) -> Vec<(usize, usize)> {
        let chunks: Vec<Vec<Record>> = left.chunks(chunk.max(1)).map(|c| c.to_vec()).collect();
        let mut out = Vec::new();
        stream_candidates(index, chunks, &RotomPool::new(2), |batch| {
            out.extend_from_slice(batch)
        });
        out
    }

    fn small_collections() -> (Vec<Record>, Vec<Record>) {
        let d = em::generate(
            EmFlavor::AbtBuy,
            &EmConfig {
                num_entities: 40,
                train_pairs: 80,
                test_pairs: 20,
                ..Default::default()
            },
        );
        let left = d.train_pairs.iter().map(|p| p.left.clone()).collect();
        let right = d.train_pairs.iter().map(|p| p.right.clone()).collect();
        (left, right)
    }

    #[test]
    fn exact_config_matches_block_candidates() {
        let (left, right) = small_collections();
        let pool = RotomPool::new(2);
        for min_shared in [1usize, 2, 3] {
            let cfg = BlockingConfig {
                min_shared,
                ..Default::default()
            };
            let index = ShardedIndex::build(&right, cfg, &pool);
            let expect = block_candidates(&left, &right, min_shared);
            assert_eq!(
                pairs_from_stream(&index, &left, 17),
                expect,
                "min_shared={min_shared}"
            );
        }
    }

    #[test]
    fn min_shared_zero_is_cross_product() {
        let (left, right) = small_collections();
        let pool = RotomPool::new(2);
        let index = ShardedIndex::build(
            &right[..5],
            BlockingConfig {
                min_shared: 0,
                ..Default::default()
            },
            &pool,
        );
        let pairs = pairs_from_stream(&index, &left[..4], 2);
        assert_eq!(pairs, block_candidates(&left[..4], &right[..5], 0));
        assert_eq!(pairs.len(), 20);
    }

    #[test]
    fn df_ceiling_prunes_stopwords_but_keeps_matches() {
        // Every record carries the same stopword tokens; a low ceiling must
        // prune them without losing pairs that share enough rare tokens.
        let corpus = em::EmCorpus::new(em::CorpusConfig {
            num_entities: 300,
            stopwords: 3,
            ..Default::default()
        });
        let left = corpus.chunk(em::CorpusSide::Left, 0..300);
        let right = corpus.chunk(em::CorpusSide::Right, 0..300);
        let pool = RotomPool::new(2);
        let cfg = BlockingConfig {
            min_shared: 2,
            df_ceiling: Some(50),
            ..Default::default()
        };
        let index = ShardedIndex::build(&right, cfg, &pool);
        let stats = index.stats();
        assert!(
            stats.tokens_pruned >= 3,
            "stopwords must be pruned: {stats:?}"
        );
        assert!(stats.postings_pruned >= 3 * 300, "{stats:?}");
        // df is still reported for pruned tokens through the IdfIndex.
        assert_eq!(index.idf().doc_freq("the"), 300);
        let pairs = pairs_from_stream(&index, &left, 64);
        let matched = (0..300)
            .filter(|&i| pairs.binary_search(&(i, i)).is_ok())
            .count();
        assert!(matched >= 295, "match recall under pruning: {matched}/300");
        // Pruning only ever removes candidates relative to the exact path.
        let exact = block_candidates(&left, &right, 2);
        assert!(pairs.iter().all(|p| exact.binary_search(p).is_ok()));
    }

    #[test]
    fn lsh_probe_finds_its_own_signature() {
        let corpus = em::EmCorpus::new(em::CorpusConfig {
            num_entities: 100,
            ..Default::default()
        });
        let right = corpus.chunk(em::CorpusSide::Right, 0..100);
        let pool = RotomPool::new(1);
        let index = ShardedIndex::build(
            &right,
            BlockingConfig {
                lsh: Some(LshParams::default()),
                ..Default::default()
            },
            &pool,
        );
        // A record always collides with itself in every band.
        let toks: Vec<Vec<String>> = right.iter().map(content_token_list).collect();
        let lsh = index.lsh.as_ref().unwrap();
        for (j, ts) in toks.iter().enumerate() {
            let hits = lsh.probe(ts, index.cfg.seed);
            assert!(hits.binary_search(&(j as u32)).is_ok(), "record {j}");
        }
        // Empty records produce no signature and no probe hits.
        assert!(band_keys(&[], LshParams::default(), 1).is_empty());
        assert!(lsh.probe(&[], index.cfg.seed).is_empty());
    }

    #[test]
    fn streaming_buffer_stays_bounded() {
        let (left, right) = small_collections();
        let pool = RotomPool::new(2);
        let cfg = BlockingConfig {
            min_shared: 1,
            max_buffered_pairs: 64,
            ..Default::default()
        };
        let index = ShardedIndex::build(&right, cfg, &pool);
        let chunks: Vec<Vec<Record>> = left.chunks(16).map(|c| c.to_vec()).collect();
        let mut batches = 0usize;
        let mut total = 0usize;
        let stats = stream_candidates(&index, chunks, &pool, |batch| {
            batches += 1;
            total += batch.len();
        });
        assert_eq!(stats.candidates as usize, total);
        assert!(
            stats.candidates as usize > 64,
            "workload too small to test streaming"
        );
        // The buffer bound: cap plus at most one record's candidate list.
        assert!(
            stats.peak_buffered_pairs <= 64 + right.len(),
            "peak {} exceeds bound",
            stats.peak_buffered_pairs
        );
        assert!(batches > 1, "must flush more than once");
    }

    #[test]
    fn channel_variant_is_equivalent_and_bounded() {
        let (left, right) = small_collections();
        let pool = RotomPool::new(2);
        let cfg = BlockingConfig {
            min_shared: 2,
            channel_batches: 2,
            max_buffered_pairs: 32,
            ..Default::default()
        };
        let index = ShardedIndex::build(&right, cfg, &pool);
        let chunks: Vec<Vec<Record>> = left.chunks(8).map(|c| c.to_vec()).collect();
        let mut streamed = Vec::new();
        let stats = stream_candidates_channel(&index, chunks, &pool, |batch| {
            streamed.extend(batch);
        });
        assert_eq!(streamed, block_candidates(&left, &right, 2));
        assert_eq!(stats.candidates as usize, streamed.len());
    }

    #[test]
    fn token_shard_is_stable_and_in_range() {
        for ns in [1usize, 2, 7, 64] {
            for t in ["alpha", "beta", "x-100.5", "zu"] {
                let s = token_shard(fnv1a64(t), ns);
                assert!(s < ns);
                assert_eq!(s, token_shard(fnv1a64(t), ns), "stable for {t}");
            }
        }
    }
}
