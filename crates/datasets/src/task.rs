//! Task-level dataset representation and sampling utilities.

use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::example::Example;

/// Which of Rotom's three supported task families a dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Entity matching (binary: match / no-match).
    EntityMatching,
    /// Error detection (binary: clean / dirty).
    ErrorDetection,
    /// Text classification (k classes).
    TextClassification,
}

/// A fully materialized sequence-classification dataset: the common currency
/// between the generators, Rotom's training pipeline, and the benchmark
/// harness.
#[derive(Debug, Clone)]
pub struct TaskDataset {
    /// Dataset name (e.g. "Abt-Buy", "beers", "TREC").
    pub name: String,
    /// Task family.
    pub kind: TaskKind,
    /// Number of classes.
    pub num_classes: usize,
    /// Pool the experiments sample train/valid sets from.
    pub train_pool: Vec<Example>,
    /// Held-out evaluation examples.
    pub test: Vec<Example>,
    /// Unlabeled sequences for InvDA training and semi-supervised learning.
    pub unlabeled: Vec<Vec<String>>,
}

impl TaskDataset {
    /// Uniformly sample `size` examples from the train pool (without
    /// replacement; clamped to the pool size). Deterministic per `seed`.
    pub fn sample_train(&self, size: usize, seed: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(seed);
        sample_without_replacement(&self.train_pool, size, &mut rng)
    }

    /// Sample a class-balanced training set of (approximately) `size`
    /// examples: `size / num_classes` per class, padded from leftovers when a
    /// class is too small. Used by the EDT experiments, which balance
    /// clean/dirty cells (§6.2).
    pub fn sample_train_balanced(&self, size: usize, seed: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(seed);
        let per_class = (size / self.num_classes).max(1);
        let mut by_class: Vec<Vec<&Example>> = vec![Vec::new(); self.num_classes];
        for ex in &self.train_pool {
            by_class[ex.label].push(ex);
        }
        let mut out: Vec<Example> = Vec::with_capacity(size);
        let mut leftovers: Vec<&Example> = Vec::new();
        for class_pool in &mut by_class {
            shuffle(class_pool, &mut rng);
            let take = per_class.min(class_pool.len());
            out.extend(class_pool[..take].iter().map(|e| (*e).clone()));
            leftovers.extend(class_pool[take..].iter().copied());
        }
        shuffle(&mut leftovers, &mut rng);
        while out.len() < size {
            match leftovers.pop() {
                Some(e) => out.push(e.clone()),
                None => break,
            }
        }
        shuffle(&mut out, &mut rng);
        out
    }

    /// Up to `n` unlabeled sequences, uniformly sampled.
    pub fn sample_unlabeled(&self, n: usize, seed: u64) -> Vec<Vec<String>> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        sample_without_replacement(&self.unlabeled, n, &mut rng)
    }
}

/// Fisher–Yates shuffle.
pub fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Uniform sample of `n` items without replacement (clamped).
pub fn sample_without_replacement<T: Clone>(pool: &[T], n: usize, rng: &mut StdRng) -> Vec<T> {
    let n = n.min(pool.len());
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in 0..n {
        let j = rng.random_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..n].iter().map(|&i| pool[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TaskDataset {
        let train_pool = (0..100)
            .map(|i| Example::new(vec![format!("tok{i}")], i % 2))
            .collect();
        TaskDataset {
            name: "toy".into(),
            kind: TaskKind::TextClassification,
            num_classes: 2,
            train_pool,
            test: Vec::new(),
            unlabeled: (0..50).map(|i| vec![format!("u{i}")]).collect(),
        }
    }

    #[test]
    fn sample_train_is_deterministic_per_seed() {
        let d = toy();
        assert_eq!(d.sample_train(10, 1), d.sample_train(10, 1));
        assert_ne!(d.sample_train(10, 1), d.sample_train(10, 2));
    }

    #[test]
    fn sample_train_without_replacement() {
        let d = toy();
        let s = d.sample_train(100, 3);
        let mut toks: Vec<&str> = s.iter().map(|e| e.tokens[0].as_str()).collect();
        toks.sort_unstable();
        toks.dedup();
        assert_eq!(toks.len(), 100);
    }

    #[test]
    fn balanced_sample_is_balanced() {
        let d = toy();
        let s = d.sample_train_balanced(40, 4);
        let pos = s.iter().filter(|e| e.label == 1).count();
        assert_eq!(pos, 20);
        assert_eq!(s.len(), 40);
    }

    #[test]
    fn balanced_sample_pads_from_leftovers() {
        let mut d = toy();
        // Make class 1 tiny: only 3 examples.
        d.train_pool
            .retain(|e| e.label == 0 || e.tokens[0].ends_with('1'));
        d.train_pool.truncate(53);
        let s = d.sample_train_balanced(40, 5);
        assert_eq!(s.len(), 40);
    }

    #[test]
    fn unlabeled_sampling_clamps() {
        let d = toy();
        assert_eq!(d.sample_unlabeled(500, 0).len(), 50);
    }
}
