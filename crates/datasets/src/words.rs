//! Domain word pools for the synthetic benchmark generators.
//!
//! The pools intentionally overlap with the built-in thesaurus in
//! `rotom-text` so that synonym-based DA operators have traction on the
//! generated data, just as WordNet does on the real benchmarks.

/// Consumer electronics / product brands (Abt-Buy, Walmart-Amazon flavors).
pub const BRANDS: &[&str] = &[
    "sony",
    "samsung",
    "panasonic",
    "canon",
    "nikon",
    "apple",
    "dell",
    "hp",
    "lenovo",
    "asus",
    "logitech",
    "philips",
    "toshiba",
    "sharp",
    "sandisk",
    "kingston",
    "garmin",
    "bose",
    "jbl",
    "netgear",
    "linksys",
    "epson",
    "brother",
    "olympus",
    "casio",
    "vtech",
    "belkin",
    "targus",
];

/// Product categories with plausible head nouns.
pub const PRODUCT_TYPES: &[&str] = &[
    "camera",
    "laptop",
    "monitor",
    "printer",
    "speaker",
    "headphones",
    "keyboard",
    "mouse",
    "router",
    "charger",
    "battery",
    "cable",
    "case",
    "phone",
    "tablet",
    "projector",
    "scanner",
    "camcorder",
    "watch",
    "drive",
];

/// Product descriptors.
pub const PRODUCT_ADJS: &[&str] = &[
    "wireless",
    "portable",
    "digital",
    "professional",
    "premium",
    "standard",
    "compact",
    "ultra",
    "slim",
    "rugged",
    "gaming",
    "ergonomic",
    "rechargeable",
    "waterproof",
    "foldable",
];

/// Colors used in product listings.
pub const COLORS: &[&str] = &[
    "black", "white", "silver", "blue", "red", "green", "gray", "pink",
];

/// Capacity/size units.
pub const UNITS: &[&str] = &["gb", "tb", "mb", "inch", "mm", "mah", "watts", "oz", "lbs"];

/// Database/systems paper title vocabulary (DBLP-ACM/Scholar flavors).
pub const TITLE_WORDS: &[&str] = &[
    "efficient",
    "effective",
    "scalable",
    "distributed",
    "parallel",
    "adaptive",
    "incremental",
    "approximate",
    "optimal",
    "robust",
    "secure",
    "interactive",
    "automated",
    "unified",
    "query",
    "queries",
    "database",
    "databases",
    "index",
    "indexing",
    "join",
    "joins",
    "transaction",
    "transactions",
    "stream",
    "streams",
    "storage",
    "caching",
    "recovery",
    "optimization",
    "processing",
    "evaluation",
    "estimation",
    "mining",
    "learning",
    "matching",
    "cleaning",
    "integration",
    "discovery",
    "analysis",
    "summarization",
    "sampling",
    "clustering",
    "classification",
    "partitioning",
    "replication",
    "compression",
    "encryption",
    "relational",
    "spatial",
    "temporal",
    "graph",
    "semistructured",
    "probabilistic",
    "timestamping",
    "views",
    "schemas",
    "workloads",
    "benchmarks",
    "systems",
];

/// Connector words for paper titles.
pub const TITLE_GLUE: &[&str] = &[
    "for", "in", "of", "with", "over", "via", "using", "and", "on",
];

/// Author first names.
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "wei",
    "yuki",
    "anil",
    "priya",
    "chen",
    "fatima",
    "olga",
    "lars",
    "ingrid",
    "pedro",
];

/// Author last names.
pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "chen",
    "wang",
    "kumar",
    "patel",
    "kim",
    "nguyen",
    "schmidt",
    "mueller",
    "rossi",
];

/// Publication venues (full names paired with abbreviations).
pub const VENUES: &[(&str, &str)] = &[
    ("international conference on management of data", "sigmod"),
    ("very large data bases", "vldb"),
    ("international conference on data engineering", "icde"),
    ("conference on information and knowledge management", "cikm"),
    ("acm transactions on database systems", "tods"),
    (
        "ieee transactions on knowledge and data engineering",
        "tkde",
    ),
    ("extending database technology", "edbt"),
    ("knowledge discovery and data mining", "kdd"),
];

/// Movie title vocabulary.
pub const MOVIE_WORDS: &[&str] = &[
    "dark", "last", "first", "lost", "hidden", "silent", "broken", "golden", "midnight", "crimson",
    "eternal", "final", "secret", "wild", "frozen", "burning", "shadow", "light", "night", "day",
    "city", "river", "mountain", "ocean", "garden", "empire", "kingdom", "legacy", "return",
    "rise", "fall", "escape", "journey", "promise", "memory", "dream", "storm", "winter", "summer",
    "heart",
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "action",
    "thriller",
    "horror",
    "romance",
    "documentary",
    "animation",
    "crime",
    "adventure",
];

/// US cities (hospital/tax flavors).
pub const CITIES: &[&str] = &[
    "springfield",
    "riverside",
    "franklin",
    "greenville",
    "bristol",
    "clinton",
    "fairview",
    "salem",
    "madison",
    "georgetown",
    "arlington",
    "ashland",
    "burlington",
    "manchester",
    "milton",
    "newport",
    "oxford",
    "clayton",
    "dover",
    "hudson",
];

/// US states (abbreviations).
pub const STATES: &[&str] = &[
    "al", "ak", "az", "ca", "co", "ct", "fl", "ga", "il", "in", "ky", "ma", "md", "mi", "mn", "mo",
    "nc", "ny", "oh", "or", "pa", "tx", "va", "wa", "wi",
];

/// Street suffixes.
pub const STREET_SUFFIXES: &[&str] = &["street", "avenue", "road", "drive", "lane", "boulevard"];

/// Street base names.
pub const STREET_NAMES: &[&str] = &[
    "main",
    "oak",
    "maple",
    "cedar",
    "pine",
    "elm",
    "washington",
    "lake",
    "hill",
    "park",
    "church",
    "walnut",
    "spring",
    "ridge",
    "meadow",
    "sunset",
];

/// Beer name components.
pub const BEER_ADJS: &[&str] = &[
    "hoppy", "golden", "amber", "dark", "wild", "smooth", "crisp", "bold", "rustic", "hazy",
    "imperial", "velvet", "copper", "frosty", "blazing",
];

/// Beer nouns.
pub const BEER_NOUNS: &[&str] = &[
    "trail", "river", "canyon", "summit", "harvest", "barrel", "anchor", "raven", "fox", "badger",
    "bison", "falcon", "prairie", "glacier", "ember",
];

/// Beer styles.
pub const BEER_STYLES: &[&str] = &[
    "american ipa",
    "pale ale",
    "stout",
    "porter",
    "pilsner",
    "amber ale",
    "wheat beer",
    "saison",
    "lager",
    "brown ale",
    "double ipa",
    "blonde ale",
];

/// Brewery suffixes.
pub const BREWERY_SUFFIXES: &[&str] = &["brewing company", "brewery", "brewhouse", "beer works"];

/// Hospital measure names (hospital flavor).
pub const MEASURES: &[&str] = &[
    "heart attack care",
    "surgical infection prevention",
    "pneumonia care",
    "stroke care",
    "emergency response",
    "patient safety",
    "readmission rate",
    "timely care",
];

/// Medical journal name components (rayyan flavor).
pub const JOURNAL_WORDS: &[&str] = &[
    "journal",
    "annals",
    "archives",
    "review",
    "bulletin",
    "proceedings",
    "reports",
];

/// Medical fields (rayyan flavor).
pub const MEDICAL_FIELDS: &[&str] = &[
    "cardiology",
    "neurology",
    "oncology",
    "pediatrics",
    "epidemiology",
    "immunology",
    "radiology",
    "surgery",
    "psychiatry",
    "pathology",
];

/// News topic vocabulary keyed by AG class (world, sports, business, sci/tech).
pub const AG_TOPIC_WORDS: [&[&str]; 4] = [
    &[
        "government",
        "minister",
        "treaty",
        "border",
        "embassy",
        "summit",
        "election",
        "parliament",
        "sanctions",
        "diplomat",
    ],
    &[
        "team",
        "season",
        "coach",
        "playoff",
        "championship",
        "score",
        "tournament",
        "league",
        "striker",
        "inning",
    ],
    &[
        "market",
        "shares",
        "profit",
        "investors",
        "merger",
        "earnings",
        "stocks",
        "quarterly",
        "revenue",
        "trade",
    ],
    &[
        "software",
        "researchers",
        "internet",
        "satellite",
        "processor",
        "startup",
        "encryption",
        "browser",
        "robotics",
        "genome",
    ],
];

/// Positive sentiment adjectives graded mild → strong.
pub const POS_ADJS: &[&str] = &[
    "decent",
    "solid",
    "good",
    "great",
    "excellent",
    "wonderful",
    "fantastic",
    "amazing",
    "superb",
    "outstanding",
    "brilliant",
    "flawless",
];

/// Negative sentiment adjectives graded mild → strong.
pub const NEG_ADJS: &[&str] = &[
    "mediocre",
    "bland",
    "weak",
    "poor",
    "bad",
    "disappointing",
    "terrible",
    "awful",
    "dreadful",
    "horrible",
    "unwatchable",
    "worthless",
];

/// Review subjects.
pub const REVIEW_NOUNS: &[&str] = &[
    "plot",
    "acting",
    "soundtrack",
    "pacing",
    "script",
    "ending",
    "cast",
    "dialogue",
    "cinematography",
    "story",
    "battery",
    "screen",
    "build quality",
    "sound",
    "design",
    "performance",
    "interface",
    "packaging",
    "price",
    "delivery",
];
