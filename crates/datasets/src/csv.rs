//! Dependency-free CSV export/import for the generated benchmarks.
//!
//! Real benchmark suites ship as CSV; exporting the synthetic datasets in
//! the same shape lets them be inspected with standard tooling or fed to
//! other systems. The writer quotes per RFC 4180 (commas, quotes, newlines);
//! the reader accepts exactly what the writer emits.

use crate::edt::EdtDataset;
use crate::em::EmDataset;
use rotom_text::Record;

/// Quote a field when needed (RFC 4180).
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize one CSV row.
pub fn write_row(fields: &[&str]) -> String {
    fields
        .iter()
        .map(|f| escape(f))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse one CSV row produced by [`write_row`]. Returns `None` on malformed
/// quoting.
pub fn parse_row(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match (in_quotes, c) {
            (false, ',') => fields.push(std::mem::take(&mut cur)),
            (false, '"') if cur.is_empty() => in_quotes = true,
            (false, ch) => cur.push(ch),
            (true, '"') => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (true, ch) => cur.push(ch),
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(cur);
    Some(fields)
}

/// The union of attribute names across records, in first-seen order.
pub fn union_schema(records: &[&Record]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in records {
        for (attr, _) in &r.attrs {
            if !out.contains(attr) {
                out.push(attr.clone());
            }
        }
    }
    out
}

/// Export labeled entity pairs as CSV with `left_*`/`right_*` columns plus a
/// final `label` column.
pub fn em_pairs_csv(data: &EmDataset) -> String {
    let lefts: Vec<&Record> = data.train_pairs.iter().map(|p| &p.left).collect();
    let rights: Vec<&Record> = data.train_pairs.iter().map(|p| &p.right).collect();
    let l_schema = union_schema(&lefts);
    let r_schema = union_schema(&rights);
    let mut header: Vec<String> = l_schema.iter().map(|a| format!("left_{a}")).collect();
    header.extend(r_schema.iter().map(|a| format!("right_{a}")));
    header.push("label".to_string());
    let mut out = write_row(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    out.push('\n');
    for p in &data.train_pairs {
        let mut row: Vec<String> = Vec::with_capacity(header.len());
        for a in &l_schema {
            row.push(p.left.get(a).unwrap_or("").to_string());
        }
        for a in &r_schema {
            row.push(p.right.get(a).unwrap_or("").to_string());
        }
        row.push((p.is_match as u8).to_string());
        out.push_str(&write_row(
            &row.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        ));
        out.push('\n');
    }
    out
}

/// Export a dirty table as CSV, plus a parallel 0/1 error-mask CSV.
pub fn edt_table_csv(data: &EdtDataset) -> (String, String) {
    let header: Vec<&str> = data.columns.iter().map(|c| c.as_str()).collect();
    let mut table = write_row(&header);
    table.push('\n');
    let mut mask = write_row(&header);
    mask.push('\n');
    for (r, row) in data.rows.iter().enumerate() {
        let values: Vec<&str> = data
            .columns
            .iter()
            .map(|c| row.get(c).unwrap_or(""))
            .collect();
        table.push_str(&write_row(&values));
        table.push('\n');
        let bits: Vec<String> = data.mask[r]
            .iter()
            .map(|&b| (b as u8).to_string())
            .collect();
        mask.push_str(&write_row(
            &bits.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        ));
        mask.push('\n');
    }
    (table, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edt::{self, EdtConfig, EdtFlavor};
    use crate::em::{self, EmConfig, EmFlavor};

    #[test]
    fn row_roundtrip_with_quoting() {
        let fields = ["plain", "has,comma", "has \"quote\"", "multi\nline", ""];
        let line = write_row(&fields);
        let parsed = parse_row(&line).unwrap();
        assert_eq!(parsed, fields);
    }

    #[test]
    fn malformed_quotes_rejected() {
        assert!(parse_row("\"unterminated").is_none());
    }

    #[test]
    fn em_csv_has_label_column_and_parses() {
        let cfg = EmConfig {
            num_entities: 20,
            train_pairs: 30,
            test_pairs: 10,
            ..Default::default()
        };
        let data = em::generate(EmFlavor::AbtBuy, &cfg);
        let csv = em_pairs_csv(&data);
        let mut lines = csv.lines();
        let header = parse_row(lines.next().unwrap()).unwrap();
        assert_eq!(header.last().unwrap(), "label");
        assert!(header.iter().any(|h| h.starts_with("left_")));
        let width = header.len();
        let mut n = 0;
        for line in lines {
            let row = parse_row(line).unwrap();
            assert_eq!(row.len(), width);
            assert!(row.last().unwrap() == "0" || row.last().unwrap() == "1");
            n += 1;
        }
        assert_eq!(n, 30);
    }

    #[test]
    fn edt_csv_mask_aligns() {
        let data = edt::generate(
            EdtFlavor::Beers,
            &EdtConfig {
                rows: Some(20),
                ..Default::default()
            },
        );
        let (table, mask) = edt_table_csv(&data);
        assert_eq!(table.lines().count(), 21);
        assert_eq!(mask.lines().count(), 21);
        let ones: usize = mask
            .lines()
            .skip(1)
            .flat_map(|l| parse_row(l).unwrap())
            .filter(|v| v == "1")
            .count();
        assert_eq!(ones, data.num_errors());
    }
}
