//! Dependency-free CSV export/import for the generated benchmarks.
//!
//! Real benchmark suites ship as CSV; exporting the synthetic datasets in
//! the same shape lets them be inspected with standard tooling or fed to
//! other systems. The writer quotes per RFC 4180 (commas, quotes, newlines);
//! the reader accepts exactly what the writer emits.

use crate::edt::EdtDataset;
use crate::em::EmDataset;
use rotom_text::Record;

/// Quote a field when needed (RFC 4180).
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize one CSV row.
pub fn write_row(fields: &[&str]) -> String {
    fields
        .iter()
        .map(|f| escape(f))
        .collect::<Vec<_>>()
        .join(",")
}

/// Error raised by [`parse_table`], carrying the 1-based physical line
/// number of the offending row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number where the malformed row starts.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CsvError {}

/// Incremental row reader: assembles one logical CSV row at a time from
/// physical lines (quoted fields may span lines), tracking 1-based line
/// numbers for error reporting. The shared core of [`parse_table`] and
/// [`table_chunks`].
struct RowReader<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> RowReader<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines().enumerate(),
        }
    }

    /// Next logical row, or `None` at end of input.
    fn next_row(&mut self) -> Option<Result<Vec<String>, CsvError>> {
        let (i, first) = self.lines.next()?;
        let start = i + 1;
        // A row whose quoted field contains '\n' spans physical lines:
        // extend the record until the quoting balances.
        let mut record = first.to_string();
        let mut parsed = parse_row(&record);
        while parsed.is_none() {
            match self.lines.next() {
                Some((_, next)) => {
                    record.push('\n');
                    record.push_str(next);
                    parsed = parse_row(&record);
                }
                None => {
                    return Some(Err(CsvError {
                        line: start,
                        msg: "unterminated quoted field".to_string(),
                    }))
                }
            }
        }
        Some(Ok(parsed.expect("loop exits only once parsed")))
    }

    /// Next logical row validated against the header width, with its start
    /// line number for errors.
    fn next_data_row(&mut self, width: usize) -> Option<Result<Vec<String>, CsvError>> {
        // Recompute the start line from the enumerate cursor before reading.
        let start = self.lines.clone().next().map(|(i, _)| i + 1).unwrap_or(1);
        let row = match self.next_row()? {
            Ok(row) => row,
            Err(e) => return Some(Err(e)),
        };
        if row.len() != width {
            let kind = if row.len() < width {
                "ragged row"
            } else {
                "over-long row"
            };
            return Some(Err(CsvError {
                line: start,
                msg: format!(
                    "{kind}: {} fields where the header has {}",
                    row.len(),
                    width
                ),
            }));
        }
        Some(Ok(row))
    }
}

/// Parse a whole CSV table produced by the exporters: a header row followed
/// by data rows of exactly the header's width.
///
/// Unlike looping [`parse_row`] over `text.lines()`, this handles quoted
/// fields spanning physical lines and *rejects* malformed input with the
/// offending line number: unterminated quotes, ragged (short) rows, and
/// over-long rows all error instead of silently reading `""` for missing
/// cells or dropping extras.
///
/// The whole table is materialized; for bounded-memory ingestion of large
/// tables use [`table_chunks`], which shares this grammar.
pub fn parse_table(text: &str) -> Result<(Vec<String>, Vec<Vec<String>>), CsvError> {
    let mut chunks = table_chunks(text, usize::MAX)?;
    let header = chunks.header().to_vec();
    let mut rows = Vec::new();
    for chunk in &mut chunks {
        rows.extend(chunk?);
    }
    Ok((header, rows))
}

/// Streaming chunked reader over a CSV table: the header is parsed eagerly,
/// then each iterator item yields up to `chunk_rows` validated data rows.
/// Identical grammar and errors to [`parse_table`], but peak memory is one
/// chunk — the ingestion shape the blocking pipeline consumes.
pub fn table_chunks(text: &str, chunk_rows: usize) -> Result<TableChunks<'_>, CsvError> {
    let mut reader = RowReader::new(text);
    let header = match reader.next_row() {
        Some(Ok(h)) => h,
        Some(Err(e)) => return Err(e),
        None => {
            return Err(CsvError {
                line: 1,
                msg: "empty input: missing header row".to_string(),
            })
        }
    };
    Ok(TableChunks {
        reader,
        header,
        chunk_rows: chunk_rows.max(1),
        failed: false,
    })
}

/// Iterator returned by [`table_chunks`].
pub struct TableChunks<'a> {
    reader: RowReader<'a>,
    header: Vec<String>,
    chunk_rows: usize,
    failed: bool,
}

impl TableChunks<'_> {
    /// The header row (column names).
    pub fn header(&self) -> &[String] {
        &self.header
    }
}

impl Iterator for TableChunks<'_> {
    type Item = Result<Vec<Vec<String>>, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let mut rows = Vec::new();
        while rows.len() < self.chunk_rows {
            match self.reader.next_data_row(self.header.len()) {
                Some(Ok(row)) => rows.push(row),
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                None => break,
            }
        }
        if rows.is_empty() {
            None
        } else {
            Some(Ok(rows))
        }
    }
}

/// Interpret parsed rows as records: one attribute per header column, in
/// header order. The inverse of the exporters' row layout (modulo the
/// `label` column, which callers strip themselves when present).
pub fn rows_to_records(header: &[String], rows: &[Vec<String>]) -> Vec<Record> {
    rows.iter()
        .map(|row| Record {
            attrs: header
                .iter()
                .zip(row)
                .map(|(a, v)| (a.clone(), v.clone()))
                .collect(),
        })
        .collect()
}

/// Parse one CSV row produced by [`write_row`]. Returns `None` on malformed
/// quoting.
pub fn parse_row(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match (in_quotes, c) {
            (false, ',') => fields.push(std::mem::take(&mut cur)),
            (false, '"') if cur.is_empty() => in_quotes = true,
            (false, ch) => cur.push(ch),
            (true, '"') => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (true, ch) => cur.push(ch),
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(cur);
    Some(fields)
}

/// The union of attribute names across records, in first-seen order.
pub fn union_schema(records: &[&Record]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in records {
        for (attr, _) in &r.attrs {
            if !out.contains(attr) {
                out.push(attr.clone());
            }
        }
    }
    out
}

/// Export labeled entity pairs as CSV with `left_*`/`right_*` columns plus a
/// final `label` column.
pub fn em_pairs_csv(data: &EmDataset) -> String {
    let lefts: Vec<&Record> = data.train_pairs.iter().map(|p| &p.left).collect();
    let rights: Vec<&Record> = data.train_pairs.iter().map(|p| &p.right).collect();
    let l_schema = union_schema(&lefts);
    let r_schema = union_schema(&rights);
    let mut header: Vec<String> = l_schema.iter().map(|a| format!("left_{a}")).collect();
    header.extend(r_schema.iter().map(|a| format!("right_{a}")));
    header.push("label".to_string());
    let mut out = write_row(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    out.push('\n');
    for p in &data.train_pairs {
        let mut row: Vec<String> = Vec::with_capacity(header.len());
        for a in &l_schema {
            row.push(p.left.get(a).unwrap_or("").to_string());
        }
        for a in &r_schema {
            row.push(p.right.get(a).unwrap_or("").to_string());
        }
        row.push((p.is_match as u8).to_string());
        out.push_str(&write_row(
            &row.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        ));
        out.push('\n');
    }
    out
}

/// Export a dirty table as CSV, plus a parallel 0/1 error-mask CSV.
pub fn edt_table_csv(data: &EdtDataset) -> (String, String) {
    let header: Vec<&str> = data.columns.iter().map(|c| c.as_str()).collect();
    let mut table = write_row(&header);
    table.push('\n');
    let mut mask = write_row(&header);
    mask.push('\n');
    for (r, row) in data.rows.iter().enumerate() {
        let values: Vec<&str> = data
            .columns
            .iter()
            .map(|c| row.get(c).unwrap_or(""))
            .collect();
        table.push_str(&write_row(&values));
        table.push('\n');
        let bits: Vec<String> = data.mask[r]
            .iter()
            .map(|&b| (b as u8).to_string())
            .collect();
        mask.push_str(&write_row(
            &bits.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        ));
        mask.push('\n');
    }
    (table, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edt::{self, EdtConfig, EdtFlavor};
    use crate::em::{self, EmConfig, EmFlavor};

    #[test]
    fn row_roundtrip_with_quoting() {
        let fields = ["plain", "has,comma", "has \"quote\"", "multi\nline", ""];
        let line = write_row(&fields);
        let parsed = parse_row(&line).unwrap();
        assert_eq!(parsed, fields);
    }

    #[test]
    fn malformed_quotes_rejected() {
        assert!(parse_row("\"unterminated").is_none());
    }

    #[test]
    fn parse_table_roundtrips_exported_em_csv() {
        let cfg = EmConfig {
            num_entities: 20,
            train_pairs: 25,
            test_pairs: 10,
            ..Default::default()
        };
        let data = em::generate(EmFlavor::AbtBuy, &cfg);
        let (header, rows) = parse_table(&em_pairs_csv(&data)).unwrap();
        assert_eq!(header.last().unwrap(), "label");
        assert_eq!(rows.len(), 25);
        assert!(rows.iter().all(|r| r.len() == header.len()));
    }

    #[test]
    fn parse_table_rejects_ragged_row_with_line_number() {
        let text = "a,b,c\n1,2,3\n4,5\n6,7,8\n";
        let err = parse_table(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("ragged row"), "{}", err.msg);
        assert!(err.msg.contains("2 fields"), "{}", err.msg);
        assert!(err.to_string().contains("line 3"), "{}", err);
    }

    #[test]
    fn parse_table_rejects_over_long_row_with_line_number() {
        let text = "a,b\n1,2\n3,4,5\n";
        let err = parse_table(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("over-long row"), "{}", err.msg);
    }

    #[test]
    fn parse_table_rejects_unterminated_quote_at_row_start_line() {
        let text = "a,b\n1,\"never closed\n2,3\n";
        let err = parse_table(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("unterminated"), "{}", err.msg);
    }

    #[test]
    fn parse_table_handles_quoted_newlines_and_empty_input() {
        let line = write_row(&["multi\nline", "x"]);
        let text = format!("h1,h2\n{line}\n");
        let (_, rows) = parse_table(&text).unwrap();
        assert_eq!(rows, vec![vec!["multi\nline".to_string(), "x".to_string()]]);

        let err = parse_table("").unwrap_err();
        assert!(err.msg.contains("missing header"), "{}", err.msg);
    }

    #[test]
    fn table_chunks_matches_parse_table() {
        let cfg = EmConfig {
            num_entities: 20,
            train_pairs: 37,
            test_pairs: 10,
            ..Default::default()
        };
        let csv = em_pairs_csv(&em::generate(EmFlavor::AbtBuy, &cfg));
        let (header, rows) = parse_table(&csv).unwrap();
        for chunk_rows in [1, 5, 16, 1000] {
            let mut chunks = table_chunks(&csv, chunk_rows).unwrap();
            assert_eq!(chunks.header(), &header[..]);
            let mut streamed = Vec::new();
            let mut peak = 0usize;
            for c in &mut chunks {
                let c = c.unwrap();
                peak = peak.max(c.len());
                streamed.extend(c);
            }
            assert_eq!(streamed, rows, "chunk_rows={chunk_rows}");
            assert!(peak <= chunk_rows, "chunk_rows={chunk_rows} peak={peak}");
        }
    }

    #[test]
    fn table_chunks_reports_errors_and_fuses() {
        let text = "a,b,c\n1,2,3\n4,5\n6,7,8\n";
        let mut chunks = table_chunks(text, 1).unwrap();
        assert!(chunks.next().unwrap().is_ok());
        let err = chunks.next().unwrap().unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("ragged row"), "{}", err.msg);
        // The iterator fuses after an error.
        assert!(chunks.next().is_none());

        assert!(table_chunks("", 8).is_err(), "missing header must error");
    }

    #[test]
    fn rows_to_records_preserves_schema_order() {
        let header = vec!["title".to_string(), "price".to_string()];
        let rows = vec![vec!["ok go".to_string(), "9.99".to_string()]];
        let recs = rows_to_records(&header, &rows);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get("title"), Some("ok go"));
        assert_eq!(recs[0].get("price"), Some("9.99"));
        assert_eq!(recs[0].attrs[0].0, "title");
    }

    #[test]
    fn em_csv_has_label_column_and_parses() {
        let cfg = EmConfig {
            num_entities: 20,
            train_pairs: 30,
            test_pairs: 10,
            ..Default::default()
        };
        let data = em::generate(EmFlavor::AbtBuy, &cfg);
        let csv = em_pairs_csv(&data);
        let mut lines = csv.lines();
        let header = parse_row(lines.next().unwrap()).unwrap();
        assert_eq!(header.last().unwrap(), "label");
        assert!(header.iter().any(|h| h.starts_with("left_")));
        let width = header.len();
        let mut n = 0;
        for line in lines {
            let row = parse_row(line).unwrap();
            assert_eq!(row.len(), width);
            assert!(row.last().unwrap() == "0" || row.last().unwrap() == "1");
            n += 1;
        }
        assert_eq!(n, 30);
    }

    #[test]
    fn edt_csv_mask_aligns() {
        let data = edt::generate(
            EdtFlavor::Beers,
            &EdtConfig {
                rows: Some(20),
                ..Default::default()
            },
        );
        let (table, mask) = edt_table_csv(&data);
        assert_eq!(table.lines().count(), 21);
        assert_eq!(mask.lines().count(), 21);
        let ones: usize = mask
            .lines()
            .skip(1)
            .flat_map(|l| parse_row(l).unwrap())
            .filter(|v| v == "1")
            .count();
        assert_eq!(ones, data.num_errors());
    }
}
