//! Surface-level string perturbations used by the generators.
//!
//! Two distinct purposes:
//!
//! * **Rendering noise** — the same latent entity rendered by two "sources"
//!   differs in conventions (abbreviations, initials, reformatted numbers).
//!   This is what makes synthetic EM non-trivial.
//! * **Error injection** — EDT datasets corrupt clean cells with typos,
//!   format breaks, and violations, following Raha's error taxonomy.

use rotom_rng::rngs::StdRng;
use rotom_rng::RngExt;

/// Introduce a single character-level typo (swap / delete / duplicate /
/// replace). Words shorter than 3 chars are returned unchanged.
pub fn typo(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return word.to_string();
    }
    let mut out = chars.clone();
    let i = rng.random_range(1..out.len() - 1);
    match rng.random_range(0..4u8) {
        0 => out.swap(i, i - 1),
        1 => {
            out.remove(i);
        }
        2 => out.insert(i, out[i]),
        _ => out[i] = char::from(b'a' + rng.random_range(0..26u8)),
    }
    out.into_iter().collect()
}

/// Abbreviate: keep the first 3–4 characters (e.g. "corporation" → "corp").
pub fn abbreviate(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() <= 4 {
        return word.to_string();
    }
    let keep = rng.random_range(3..=4usize);
    chars.into_iter().take(keep).collect()
}

/// Reduce a first name to an initial with a period ("james" → "j.").
pub fn initial(word: &str) -> String {
    match word.chars().next() {
        Some(c) => format!("{c}."),
        None => String::new(),
    }
}

/// Random US-style phone number in one of several formats.
pub fn phone(rng: &mut StdRng, formatted: bool) -> String {
    let a = rng.random_range(200..1000u32);
    let b = rng.random_range(200..1000u32);
    let c = rng.random_range(0..10000u32);
    if formatted {
        format!("({a}) {b}-{c:04}")
    } else {
        format!("{a}{b}{c:04}")
    }
}

/// Corrupt a phone string: drop a digit or strip formatting.
pub fn break_phone(phone: &str, rng: &mut StdRng) -> String {
    let digits: String = phone.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() > 4 && rng.random_bool(0.5) {
        // Drop a digit (truncation error).
        digits[..digits.len() - 1].to_string()
    } else {
        // Mangle one digit.
        typo(&digits, rng)
    }
}

/// Random 5-digit zip code as a string.
pub fn zip(rng: &mut StdRng) -> String {
    format!("{:05}", rng.random_range(10000..99999u32))
}

/// Jitter a numeric value by up to ±`pct` percent, keeping one decimal.
pub fn jitter(value: f32, pct: f32, rng: &mut StdRng) -> f32 {
    let delta = rng.random_range(-pct..=pct);
    ((value * (1.0 + delta)) * 10.0).round() / 10.0
}

/// Squash whitespace out of a multi-word string ("1600 amphitheatre pkwy" →
/// "1600amphitheatrepkwy") — a formatting error seen in the paper's Table 2.
pub fn squash(s: &str) -> String {
    s.split_whitespace().collect()
}

/// Pick one element of a non-empty slice.
pub fn pick<'a, T: ?Sized>(items: &'a [&'a T], rng: &mut StdRng) -> &'a T {
    items[rng.random_range(0..items.len())]
}

/// Pick `n` distinct indices from `0..len` (n ≤ len).
pub fn pick_distinct(len: usize, n: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(n <= len);
    let mut idx: Vec<usize> = (0..len).collect();
    for i in 0..n {
        let j = rng.random_range(i..len);
        idx.swap(i, j);
    }
    idx.truncate(n);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn typo_changes_word() {
        let mut r = rng();
        let mut changed = 0;
        for _ in 0..20 {
            if typo("amphitheatre", &mut r) != "amphitheatre" {
                changed += 1;
            }
        }
        assert!(changed >= 15);
    }

    #[test]
    fn typo_preserves_short_words() {
        let mut r = rng();
        assert_eq!(typo("ab", &mut r), "ab");
    }

    #[test]
    fn abbreviate_shortens() {
        let mut r = rng();
        let a = abbreviate("corporation", &mut r);
        assert!(a.len() <= 4 && "corporation".starts_with(&a));
    }

    #[test]
    fn initial_is_one_letter_dot() {
        assert_eq!(initial("james"), "j.");
    }

    #[test]
    fn phone_formats() {
        let mut r = rng();
        let f = phone(&mut r, true);
        assert!(f.starts_with('('));
        let u = phone(&mut r, false);
        assert!(u.chars().all(|c| c.is_ascii_digit()));
        assert_eq!(u.len(), 10);
    }

    #[test]
    fn break_phone_differs_in_digits() {
        let mut r = rng();
        let original = "(866) 246-6453";
        let broken = break_phone(original, &mut r);
        let orig_digits: String = original.chars().filter(|c| c.is_ascii_digit()).collect();
        assert_ne!(broken, orig_digits);
    }

    #[test]
    fn squash_removes_spaces() {
        assert_eq!(squash("1600 amphitheatre pkwy"), "1600amphitheatrepkwy");
    }

    #[test]
    fn pick_distinct_unique() {
        let mut r = rng();
        let picks = pick_distinct(10, 5, &mut r);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn jitter_bounded() {
        let mut r = rng();
        for _ in 0..50 {
            let v = jitter(100.0, 0.1, &mut r);
            assert!((89.9..=110.1).contains(&v));
        }
    }
}
