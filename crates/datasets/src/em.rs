//! Synthetic entity-matching benchmark generators.
//!
//! Each flavor mirrors one of the paper's five EM benchmarks (Table 6):
//! record pairs from two "sources" that render a shared latent entity with
//! different conventions and noise. Matching pairs render the *same* latent
//! entity; non-matching pairs are dominated by **hard negatives** — sibling
//! entities that agree on most surface tokens (same brand and product type,
//! or overlapping paper titles) exactly like the candidates a token-overlap
//! blocker produces.
//!
//! The three starred datasets also exist in a *dirty* variant where attribute
//! values are randomly misplaced into other attributes (the DeepMatcher/Ditto
//! dirty protocol).

use crate::perturb::{abbreviate, initial, jitter, pick, typo};
use crate::task::{shuffle, TaskDataset, TaskKind};
use crate::words::*;
use rotom_rng::rngs::StdRng;
use rotom_rng::{split_seed, RngExt, SeedableRng};
use rotom_text::example::Example;
use rotom_text::serialize::{serialize_pair, Record};

/// A labeled candidate pair.
#[derive(Debug, Clone)]
pub struct LabeledPair {
    /// Record from source A.
    pub left: Record,
    /// Record from source B.
    pub right: Record,
    /// Ground truth: do the records refer to the same entity?
    pub is_match: bool,
}

/// The five EM benchmark flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmFlavor {
    /// Abt-Buy: product records, moderately noisy descriptions.
    AbtBuy,
    /// Amazon-Google: software/electronics products, heavy abbreviation —
    /// the hardest of the five.
    AmazonGoogle,
    /// DBLP-ACM: publication records, both sources clean — the easiest.
    DblpAcm,
    /// DBLP-Scholar: publications with a noisy Scholar side.
    DblpScholar,
    /// Walmart-Amazon: product records with misplaced model numbers.
    WalmartAmazon,
}

impl EmFlavor {
    /// All flavors in Table 6 order.
    pub const ALL: [EmFlavor; 5] = [
        EmFlavor::AmazonGoogle,
        EmFlavor::DblpAcm,
        EmFlavor::DblpScholar,
        EmFlavor::WalmartAmazon,
        EmFlavor::AbtBuy,
    ];

    /// Flavors that also ship a dirty variant (marked `*` in Table 6).
    pub const WITH_DIRTY: [EmFlavor; 3] = [
        EmFlavor::DblpAcm,
        EmFlavor::DblpScholar,
        EmFlavor::WalmartAmazon,
    ];

    /// Canonical dataset name.
    pub fn name(self) -> &'static str {
        match self {
            EmFlavor::AbtBuy => "Abt-Buy",
            EmFlavor::AmazonGoogle => "Amazon-Google",
            EmFlavor::DblpAcm => "DBLP-ACM",
            EmFlavor::DblpScholar => "DBLP-Scholar",
            EmFlavor::WalmartAmazon => "Walmart-Amazon",
        }
    }

    fn is_publication(self) -> bool {
        matches!(self, EmFlavor::DblpAcm | EmFlavor::DblpScholar)
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Number of latent entities to synthesize.
    pub num_entities: usize,
    /// Labeled pairs in the train pool.
    pub train_pairs: usize,
    /// Labeled pairs in the test set.
    pub test_pairs: usize,
    /// Fraction of pairs that are matches.
    pub pos_rate: f32,
    /// Fraction of negatives that are hard (sibling) negatives.
    pub hard_neg_rate: f32,
    /// Emit the dirty variant (attribute misplacement).
    pub dirty: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            num_entities: 400,
            train_pairs: 1000,
            test_pairs: 300,
            pos_rate: 0.3,
            hard_neg_rate: 0.7,
            dirty: false,
            seed: 42,
        }
    }
}

/// A generated EM dataset.
#[derive(Debug, Clone)]
pub struct EmDataset {
    /// Dataset name (flavor name, "-dirty" suffixed for dirty variants).
    pub name: String,
    /// Flavor this dataset was generated from.
    pub flavor: EmFlavor,
    /// Labeled pool the experiments sample train/valid sets from.
    pub train_pairs: Vec<LabeledPair>,
    /// Held-out test pairs.
    pub test_pairs: Vec<LabeledPair>,
}

impl EmDataset {
    /// Serialize into the common sequence-classification form
    /// (label 1 = match). All train-pool serializations double as the
    /// unlabeled corpus for InvDA / SSL.
    pub fn to_task(&self) -> TaskDataset {
        let ser = |p: &LabeledPair| serialize_pair(&p.left, &p.right);
        TaskDataset {
            name: self.name.clone(),
            kind: TaskKind::EntityMatching,
            num_classes: 2,
            train_pool: self
                .train_pairs
                .iter()
                .map(|p| Example::new(ser(p), p.is_match as usize))
                .collect(),
            test: self
                .test_pairs
                .iter()
                .map(|p| Example::new(ser(p), p.is_match as usize))
                .collect(),
            unlabeled: self.train_pairs.iter().map(ser).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Latent entities
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Entity {
    Product {
        brand: &'static str,
        adj: &'static str,
        ptype: &'static str,
        model: String,
        capacity: u32,
        unit: &'static str,
        color: &'static str,
        price: f32,
    },
    Paper {
        title: Vec<String>,
        authors: Vec<(&'static str, &'static str)>,
        venue: usize,
        year: u32,
    },
}

fn gen_product(rng: &mut StdRng) -> Entity {
    Entity::Product {
        brand: pick(BRANDS, rng),
        adj: pick(PRODUCT_ADJS, rng),
        ptype: pick(PRODUCT_TYPES, rng),
        model: format!(
            "{}{}-{}",
            char::from(b'a' + rng.random_range(0..26u8)),
            char::from(b'a' + rng.random_range(0..26u8)),
            rng.random_range(100..9999u32)
        ),
        capacity: [16u32, 32, 64, 128, 256, 512][rng.random_range(0..6usize)],
        unit: pick(UNITS, rng),
        color: pick(COLORS, rng),
        price: rng.random_range(10..900u32) as f32 + 0.99,
    }
}

fn gen_paper(rng: &mut StdRng) -> Entity {
    let len = rng.random_range(4..8usize);
    let mut title = Vec::with_capacity(len);
    for i in 0..len {
        if i > 0 && i % 2 == 0 && rng.random_bool(0.4) {
            title.push(pick(TITLE_GLUE, rng).to_string());
        } else {
            title.push(pick(TITLE_WORDS, rng).to_string());
        }
    }
    let n_auth = rng.random_range(1..4usize);
    let authors = (0..n_auth)
        .map(|_| (pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng)))
        .collect();
    Entity::Paper {
        title,
        authors,
        venue: rng.random_range(0..VENUES.len()),
        year: rng.random_range(1995..2021u32),
    }
}

/// A "sibling": a distinct entity sharing most surface features (the hard
/// negatives token-overlap blocking surfaces).
fn sibling(e: &Entity, rng: &mut StdRng) -> Entity {
    let mut s = e.clone();
    match &mut s {
        Entity::Product {
            adj,
            model,
            capacity,
            color,
            price,
            ..
        } => {
            // Same brand/type, different model — the classic near-duplicate.
            if rng.random_bool(0.6) {
                *adj = pick(PRODUCT_ADJS, rng);
            }
            *model = format!(
                "{}{}-{}",
                char::from(b'a' + rng.random_range(0..26u8)),
                char::from(b'a' + rng.random_range(0..26u8)),
                rng.random_range(100..9999u32)
            );
            if rng.random_bool(0.9) {
                *capacity = [16u32, 32, 64, 128, 256, 512][rng.random_range(0..6usize)];
            }
            if rng.random_bool(0.6) {
                *color = pick(COLORS, rng);
            }
            *price = jitter(*price, 0.4, rng);
        }
        Entity::Paper {
            title,
            year,
            authors,
            ..
        } => {
            // Perturb 2–4 title words plus the year and an author: a related
            // but different paper from the same area (what token-overlap
            // blocking surfaces).
            let n = rng.random_range(2..5usize).min(title.len());
            for _ in 0..n {
                let i = rng.random_range(0..title.len());
                title[i] = pick(TITLE_WORDS, rng).to_string();
            }
            *year = rng.random_range(1995..2021u32);
            if !authors.is_empty() {
                let i = rng.random_range(0..authors.len());
                authors[i] = (pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng));
            }
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Per-source rendering profile: the knobs that distinguish the two sources
/// of a flavor and set its difficulty.
struct RenderProfile {
    /// Probability of abbreviating the brand / venue.
    abbrev: f64,
    /// Probability of dropping the model number / year from the title field.
    drop_key: f64,
    /// Probability of introducing a typo into a name token.
    typo: f64,
    /// Probability of omitting an optional attribute entirely.
    drop_attr: f64,
    /// Use author initials (papers) / terse names (products).
    terse: bool,
}

fn profiles(flavor: EmFlavor) -> (RenderProfile, RenderProfile) {
    match flavor {
        EmFlavor::AbtBuy => (
            RenderProfile {
                abbrev: 0.05,
                drop_key: 0.05,
                typo: 0.02,
                drop_attr: 0.1,
                terse: false,
            },
            RenderProfile {
                abbrev: 0.15,
                drop_key: 0.15,
                typo: 0.05,
                drop_attr: 0.2,
                terse: true,
            },
        ),
        EmFlavor::AmazonGoogle => (
            RenderProfile {
                abbrev: 0.1,
                drop_key: 0.15,
                typo: 0.05,
                drop_attr: 0.15,
                terse: false,
            },
            RenderProfile {
                abbrev: 0.45,
                drop_key: 0.4,
                typo: 0.1,
                drop_attr: 0.4,
                terse: true,
            },
        ),
        EmFlavor::WalmartAmazon => (
            RenderProfile {
                abbrev: 0.1,
                drop_key: 0.1,
                typo: 0.04,
                drop_attr: 0.1,
                terse: false,
            },
            RenderProfile {
                abbrev: 0.25,
                drop_key: 0.25,
                typo: 0.06,
                drop_attr: 0.25,
                terse: true,
            },
        ),
        EmFlavor::DblpAcm => (
            RenderProfile {
                abbrev: 0.0,
                drop_key: 0.0,
                typo: 0.01,
                drop_attr: 0.0,
                terse: false,
            },
            RenderProfile {
                abbrev: 0.9,
                drop_key: 0.05,
                typo: 0.01,
                drop_attr: 0.05,
                terse: false,
            },
        ),
        EmFlavor::DblpScholar => (
            RenderProfile {
                abbrev: 0.0,
                drop_key: 0.0,
                typo: 0.01,
                drop_attr: 0.0,
                terse: false,
            },
            RenderProfile {
                abbrev: 0.7,
                drop_key: 0.25,
                typo: 0.05,
                drop_attr: 0.25,
                terse: true,
            },
        ),
    }
}

fn maybe_typo(s: &str, p: f64, rng: &mut StdRng) -> String {
    if rng.random_bool(p) {
        s.split_whitespace()
            .map(|w| {
                if rng.random_bool(0.5) {
                    typo(w, rng)
                } else {
                    w.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    } else {
        s.to_string()
    }
}

fn render(e: &Entity, p: &RenderProfile, rng: &mut StdRng) -> Record {
    match e {
        Entity::Product {
            brand,
            adj,
            ptype,
            model,
            capacity,
            unit,
            color,
            price,
        } => {
            let brand_str = if rng.random_bool(p.abbrev) {
                abbreviate(brand, rng)
            } else {
                brand.to_string()
            };
            let mut name = if p.terse {
                format!("{brand_str} {adj} {model} {ptype}")
            } else {
                format!("{brand_str} {adj} {ptype} {model}")
            };
            if rng.random_bool(p.drop_key) {
                name = name.replace(&format!(" {model}"), "");
            }
            let name = maybe_typo(&name, p.typo, rng);
            let mut attrs = vec![("title".to_string(), name)];
            if !rng.random_bool(p.drop_attr) {
                let desc = if p.terse {
                    format!("{capacity} {unit} {color}")
                } else {
                    format!("{adj} {color} {ptype} with {capacity} {unit}")
                };
                attrs.push(("description".to_string(), maybe_typo(&desc, p.typo, rng)));
            }
            if !rng.random_bool(p.drop_attr) {
                let price = if p.terse {
                    jitter(*price, 0.05, rng)
                } else {
                    *price
                };
                attrs.push(("price".to_string(), format!("{price:.2}")));
            }
            Record { attrs }
        }
        Entity::Paper {
            title,
            authors,
            venue,
            year,
        } => {
            let mut t = title.clone();
            if rng.random_bool(p.drop_key) && t.len() > 3 {
                t.truncate(t.len() - 1);
            }
            let title_str = maybe_typo(&t.join(" "), p.typo, rng);
            let authors_str = authors
                .iter()
                .map(|(f, l)| {
                    if p.terse {
                        format!("{} {l}", initial(f))
                    } else {
                        format!("{f} {l}")
                    }
                })
                .collect::<Vec<_>>()
                .join(" , ");
            let (full, abbr) = VENUES[*venue];
            let venue_str = if rng.random_bool(p.abbrev) {
                abbr.to_string()
            } else {
                full.to_string()
            };
            let mut attrs = vec![
                ("title".to_string(), title_str),
                ("authors".to_string(), authors_str),
            ];
            if !rng.random_bool(p.drop_attr) {
                attrs.push(("venue".to_string(), venue_str));
            }
            if !rng.random_bool(p.drop_attr) {
                attrs.push(("year".to_string(), year.to_string()));
            }
            Record { attrs }
        }
    }
}

/// Misplace attributes (dirty protocol): move a random attribute's value
/// into another attribute and blank the source.
fn make_dirty(r: &mut Record, rng: &mut StdRng) {
    if r.attrs.len() < 2 || !rng.random_bool(0.35) {
        return;
    }
    let from = rng.random_range(0..r.attrs.len());
    let mut to = rng.random_range(0..r.attrs.len() - 1);
    if to >= from {
        to += 1;
    }
    let moved = std::mem::take(&mut r.attrs[from].1);
    let target = &mut r.attrs[to].1;
    if target.is_empty() {
        *target = moved;
    } else {
        *target = format!("{target} {moved}");
    }
}

// ---------------------------------------------------------------------------
// Dataset assembly
// ---------------------------------------------------------------------------

/// Generate an EM dataset for `flavor` under `cfg`.
pub fn generate(flavor: EmFlavor, cfg: &EmConfig) -> EmDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ flavor_seed(flavor));
    let entities: Vec<Entity> = (0..cfg.num_entities)
        .map(|_| {
            if flavor.is_publication() {
                gen_paper(&mut rng)
            } else {
                gen_product(&mut rng)
            }
        })
        .collect();
    let (pa, pb) = profiles(flavor);

    let total = cfg.train_pairs + cfg.test_pairs;
    let n_pos = (total as f32 * cfg.pos_rate).round() as usize;
    let n_neg = total - n_pos;
    let n_hard = (n_neg as f32 * cfg.hard_neg_rate).round() as usize;

    let mut pairs: Vec<LabeledPair> = Vec::with_capacity(total);
    for i in 0..n_pos {
        let e = &entities[i % entities.len()];
        let mut left = render(e, &pa, &mut rng);
        let mut right = render(e, &pb, &mut rng);
        if cfg.dirty {
            make_dirty(&mut left, &mut rng);
            make_dirty(&mut right, &mut rng);
        }
        pairs.push(LabeledPair {
            left,
            right,
            is_match: true,
        });
    }
    for i in 0..n_neg {
        let e = &entities[(i * 7 + 3) % entities.len()];
        let other = if i < n_hard {
            sibling(e, &mut rng)
        } else {
            // Easy negative: an unrelated entity.
            entities[rng.random_range(0..entities.len())].clone()
        };
        let mut left = render(e, &pa, &mut rng);
        let mut right = render(&other, &pb, &mut rng);
        if cfg.dirty {
            make_dirty(&mut left, &mut rng);
            make_dirty(&mut right, &mut rng);
        }
        pairs.push(LabeledPair {
            left,
            right,
            is_match: false,
        });
    }
    shuffle(&mut pairs, &mut rng);
    let test_pairs = pairs.split_off(cfg.train_pairs.min(pairs.len()));
    let name = if cfg.dirty {
        format!("{}-dirty", flavor.name())
    } else {
        flavor.name().to_string()
    };
    EmDataset {
        name,
        flavor,
        train_pairs: pairs,
        test_pairs,
    }
}

fn flavor_seed(flavor: EmFlavor) -> u64 {
    match flavor {
        EmFlavor::AbtBuy => 0x0ab,
        EmFlavor::AmazonGoogle => 0x0a9,
        EmFlavor::DblpAcm => 0xdac,
        EmFlavor::DblpScholar => 0xd5c,
        EmFlavor::WalmartAmazon => 0x3a1,
    }
}

// ---------------------------------------------------------------------------
// Blocking (token-overlap heuristics, §2.1)
// ---------------------------------------------------------------------------

/// All attribute-value tokens of a record, in attribute order (lowercased,
/// punctuation split — see [`rotom_text::tokenize`]). The shared core of
/// every lexical helper below; may contain duplicates.
fn attr_tokens(r: &Record) -> impl Iterator<Item = String> + '_ {
    r.attrs.iter().flat_map(|(_, v)| rotom_text::tokenize(v))
}

/// The *content tokens* of a record: attribute-value tokens longer than two
/// characters (drops "of"/"to"/lone punctuation). This is the single token
/// definition the blocking APIs ([`blocked`], [`block_candidates`], and the
/// [`crate::blocking`] pipeline) agree on; callers looping over many pairs
/// should tokenize each record once and use [`blocked_tokens`].
pub fn content_tokens(r: &Record) -> std::collections::HashSet<String> {
    attr_tokens(r).filter(|t| t.len() > 2).collect()
}

/// Pre-tokenized list form of [`content_tokens`]: sorted and deduplicated,
/// the shape the streaming blocking pipeline indexes and probes with.
pub fn content_token_list(r: &Record) -> Vec<String> {
    let mut toks: Vec<String> = attr_tokens(r).filter(|t| t.len() > 2).collect();
    toks.sort_unstable();
    toks.dedup();
    toks
}

/// Pre-tokenized variant of [`blocked`]: true when the two content-token
/// sets share at least `min_shared` tokens. Trivially true at
/// `min_shared = 0`.
pub fn blocked_tokens(
    left: &std::collections::HashSet<String>,
    right: &std::collections::HashSet<String>,
    min_shared: usize,
) -> bool {
    // Intersect from the smaller side and stop as soon as the bar is met.
    let (small, large) = if left.len() <= right.len() {
        (left, right)
    } else {
        (right, left)
    };
    let mut shared = 0usize;
    for t in small {
        if large.contains(t) {
            shared += 1;
            if shared >= min_shared {
                return true;
            }
        }
    }
    shared >= min_shared
}

/// Token-overlap blocking: true when the two records share at least
/// `min_shared` content tokens. Provided for completeness of the EM workflow
/// (§2.1: "the blocking phase typically uses simple heuristics").
/// `min_shared = 0` is trivially true for every pair.
pub fn blocked(left: &Record, right: &Record, min_shared: usize) -> bool {
    blocked_tokens(&content_tokens(left), &content_tokens(right), min_shared)
}

/// The blocking phase of the EM workflow (§2.1): given two record
/// collections, emit candidate `(left_index, right_index)` pairs sharing at
/// least `min_shared` content tokens. Uses an inverted token index so the
/// cost is proportional to true candidate count rather than the cross
/// product.
///
/// `min_shared = 0` means *no blocking*: the full cross product is emitted,
/// matching [`blocked`], which is trivially true at 0 (previously the index
/// path silently required at least one shared token here, so the two
/// documented-equivalent APIs disagreed).
pub fn block_candidates(
    left: &[Record],
    right: &[Record],
    min_shared: usize,
) -> Vec<(usize, usize)> {
    use std::collections::HashMap;
    if min_shared == 0 {
        let mut out = Vec::with_capacity(left.len() * right.len());
        for i in 0..left.len() {
            for j in 0..right.len() {
                out.push((i, j));
            }
        }
        return out;
    }
    // Inverted index over the right collection.
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (j, r) in right.iter().enumerate() {
        for t in content_token_list(r) {
            index.entry(t).or_default().push(j);
        }
    }
    let mut out = Vec::new();
    for (i, l) in left.iter().enumerate() {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for t in content_token_list(l) {
            if let Some(js) = index.get(&t) {
                for &j in js {
                    *counts.entry(j).or_insert(0) += 1;
                }
            }
        }
        for (j, c) in counts {
            if c >= min_shared {
                out.push((i, j));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Convenience: generate all 8 EM task datasets of Table 8 (5 clean + 3
/// dirty) with the same config.
pub fn all_em_tasks(cfg: &EmConfig) -> Vec<TaskDataset> {
    let mut out = Vec::with_capacity(8);
    for flavor in EmFlavor::ALL {
        out.push(generate(flavor, cfg).to_task());
    }
    for flavor in EmFlavor::WITH_DIRTY {
        let dirty_cfg = EmConfig {
            dirty: true,
            ..cfg.clone()
        };
        out.push(generate(flavor, &dirty_cfg).to_task());
    }
    out
}

/// A quick lexical-similarity score used in tests and by the Raha-style
/// baseline: Jaccard similarity over *all* attribute tokens (unlike the
/// blocking helpers, short tokens count — dropping them would change the
/// baseline's scores).
pub fn jaccard(left: &Record, right: &Record) -> f32 {
    use std::collections::HashSet;
    let a: HashSet<String> = attr_tokens(left).collect();
    let b: HashSet<String> = attr_tokens(right).collect();
    let inter = a.intersection(&b).count() as f32;
    let union = a.union(&b).count() as f32;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Sample a train/test-size report matching Table 6's columns.
pub fn table6_row(d: &EmDataset) -> (String, usize, usize) {
    (d.name.clone(), d.train_pairs.len(), d.test_pairs.len())
}

// ---------------------------------------------------------------------------
// Corpus-scale streaming generator (blocking workloads)
// ---------------------------------------------------------------------------

/// Which of the two sources a corpus record is rendered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusSide {
    /// Source A: clean rendering of the latent entity.
    Left,
    /// Source B: noisy rendering (typos, dropped tokens, dropped model).
    Right,
}

/// High-frequency filler tokens the stopword-injection knob draws from (all
/// longer than two characters, so they survive the content-token filter and
/// land in the blocking index — exactly the posting-list blowup IDF pruning
/// exists to kill).
pub const CORPUS_STOPWORDS: &[&str] =
    &["the", "with", "for", "and", "pro", "new", "series", "plus"];

/// Configuration of the corpus-scale generator ([`EmCorpus`]).
///
/// Unlike [`EmConfig`], which builds Table-6-sized labeled pair sets in
/// memory, this generator is *index-addressable*: record `i` of either side
/// is computed on demand from `split_seed(seed, i)`, so million-entity
/// corpora stream in bounded chunks with no up-front materialization.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of latent entities; each renders one record per side, and
    /// `(i, i)` is the ground-truth match pair.
    pub num_entities: usize,
    /// Synthetic body-word vocabulary size. Per-token document frequency
    /// scales as roughly `6 * num_entities / vocab_words`, which is the knob
    /// that keeps posting lists bounded at scale (the Table-6 generators'
    /// fixed word lists would make every token a stopword at 1M records).
    /// `0` auto-scales to `max(1024, num_entities / 16)`.
    pub vocab_words: usize,
    /// Number of [`CORPUS_STOPWORDS`] appended to *every* record (0..=8).
    /// Non-zero values create tokens with document frequency equal to the
    /// corpus size — the IDF-pruning stress case.
    pub stopwords: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_entities: 10_000,
            vocab_words: 0,
            stopwords: 0,
            seed: 0xb10c,
        }
    }
}

/// Streaming, index-addressable EM corpus: two record sources over shared
/// latent entities, cheap enough to emit 1M+ records.
#[derive(Debug, Clone)]
pub struct EmCorpus {
    cfg: CorpusConfig,
    vocab_words: usize,
    words: Vec<String>,
}

/// Salt decorrelating the right side's noise stream from the latent stream.
const RIGHT_NOISE_SALT: u64 = 0x0b51_de00;

/// Build one synthetic body word: a unique syllable composition of `k`
/// (3 syllables below 24³, 4 above), always at least 6 characters so every
/// word survives the content-token filter.
fn corpus_word(k: usize) -> String {
    const SYL: [&str; 24] = [
        "ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "na", "po", "qu", "ri", "so", "tu",
        "ve", "wa", "xi", "yo", "zu", "ar", "en", "is", "or",
    ];
    let n = SYL.len();
    let mut w = String::with_capacity(8);
    if k < n * n * n {
        w.push_str(SYL[k % n]);
        w.push_str(SYL[(k / n) % n]);
        w.push_str(SYL[(k / (n * n)) % n]);
    } else {
        let k = k - n * n * n;
        w.push_str(SYL[k % n]);
        w.push_str(SYL[(k / n) % n]);
        w.push_str(SYL[(k / (n * n)) % n]);
        w.push_str(SYL[(k / (n * n * n)) % n]);
    }
    w
}

impl EmCorpus {
    /// Build the corpus source (materializes only the word vocabulary; the
    /// records themselves are computed on demand).
    pub fn new(cfg: CorpusConfig) -> Self {
        assert!(cfg.num_entities > 0, "corpus needs at least one entity");
        assert!(
            cfg.stopwords <= CORPUS_STOPWORDS.len(),
            "at most {} stopwords available",
            CORPUS_STOPWORDS.len()
        );
        let vocab_words = if cfg.vocab_words == 0 {
            (cfg.num_entities / 16).max(1024)
        } else {
            cfg.vocab_words
        };
        let words = (0..vocab_words).map(corpus_word).collect();
        Self {
            cfg,
            vocab_words,
            words,
        }
    }

    /// Number of latent entities (= records per side).
    pub fn num_entities(&self) -> usize {
        self.cfg.num_entities
    }

    /// Resolved body-word vocabulary size.
    pub fn vocab_words(&self) -> usize {
        self.vocab_words
    }

    /// Render record `i` of `side`. Records `(Left, i)` and `(Right, i)`
    /// refer to the same latent entity; the right side adds rendering noise
    /// from an independent `split_seed` stream, so either side can be
    /// generated (in any chunking, on any worker) without the other.
    pub fn record(&self, side: CorpusSide, i: usize) -> Record {
        let mut latent = StdRng::seed_from_u64(split_seed(self.cfg.seed, i as u64));
        let w = |r: &mut StdRng, words: &[String]| words[r.random_range(0..words.len())].clone();
        let brand = w(&mut latent, &self.words);
        let w1 = w(&mut latent, &self.words);
        let mut w2 = Some(w(&mut latent, &self.words));
        let w3 = w(&mut latent, &self.words);
        let w4 = w(&mut latent, &self.words);
        let mut model = Some(format!(
            "{}{}-{}",
            char::from(b'a' + latent.random_range(0..26u8)),
            char::from(b'a' + latent.random_range(0..26u8)),
            latent.random_range(1000..999_999u32)
        ));
        // Capacity and unit fuse into one wide-range token ("412gb"): with
        // ~3600 distinct values its document frequency stays O(n/3600), so
        // the corpus has no organically high-df content token — stopword
        // pressure is opt-in via `cfg.stopwords`, which blocking-plane
        // benchmarks rely on to separate the pruning story from the base
        // recall story.
        let capacity = format!(
            "{}{}",
            latent.random_range(100..999u32),
            ["gb", "tb", "in", "watt"][latent.random_range(0..4usize)]
        );

        let mut title_words = vec![brand, w1];
        if side == CorpusSide::Right {
            let mut noise =
                StdRng::seed_from_u64(split_seed(self.cfg.seed ^ RIGHT_NOISE_SALT, i as u64));
            if noise.random_bool(0.15) {
                w2 = None;
            }
            if noise.random_bool(0.08) {
                model = None;
            }
            if noise.random_bool(0.10) {
                let k = noise.random_range(0..title_words.len());
                title_words[k] = typo(&title_words[k], &mut noise);
            }
        }
        if let Some(w2) = w2 {
            title_words.push(w2);
        }
        if let Some(model) = model {
            title_words.push(model);
        }
        let title = title_words.join(" ");
        let mut desc = format!("{w3} {w4} {capacity}");
        for stop in &CORPUS_STOPWORDS[..self.cfg.stopwords] {
            desc.push(' ');
            desc.push_str(stop);
        }
        Record {
            attrs: vec![
                ("title".to_string(), title),
                ("description".to_string(), desc),
            ],
        }
    }

    /// Render a contiguous chunk of records — the unit the streaming
    /// blocking pipeline ingests. Panics if the range exceeds
    /// [`num_entities`](Self::num_entities).
    pub fn chunk(&self, side: CorpusSide, range: std::ops::Range<usize>) -> Vec<Record> {
        assert!(range.end <= self.cfg.num_entities, "range past corpus end");
        range.map(|i| self.record(side, i)).collect()
    }

    /// Iterator over all of one side in chunks of `chunk_records` — the
    /// shape [`crate::blocking::stream_candidates`] consumes. Peak memory is
    /// one chunk.
    pub fn chunks(
        &self,
        side: CorpusSide,
        chunk_records: usize,
    ) -> impl Iterator<Item = Vec<Record>> + '_ {
        let n = self.cfg.num_entities;
        let step = chunk_records.max(1);
        (0..n.div_ceil(step)).map(move |c| self.chunk(side, c * step..((c + 1) * step).min(n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> EmConfig {
        EmConfig {
            num_entities: 60,
            train_pairs: 120,
            test_pairs: 40,
            ..Default::default()
        }
    }

    #[test]
    fn sizes_match_config() {
        let d = generate(EmFlavor::AbtBuy, &quick_cfg());
        assert_eq!(d.train_pairs.len(), 120);
        assert_eq!(d.test_pairs.len(), 40);
    }

    #[test]
    fn positive_rate_respected() {
        let d = generate(EmFlavor::DblpAcm, &quick_cfg());
        let all: Vec<&LabeledPair> = d.train_pairs.iter().chain(&d.test_pairs).collect();
        let pos = all.iter().filter(|p| p.is_match).count();
        let rate = pos as f32 / all.len() as f32;
        assert!((rate - 0.3).abs() < 0.05, "positive rate {rate}");
    }

    #[test]
    fn matches_are_lexically_closer_than_nonmatches() {
        let d = generate(EmFlavor::DblpAcm, &quick_cfg());
        let avg = |m: bool| {
            let sel: Vec<f32> = d
                .train_pairs
                .iter()
                .filter(|p| p.is_match == m)
                .map(|p| jaccard(&p.left, &p.right))
                .collect();
            sel.iter().sum::<f32>() / sel.len() as f32
        };
        assert!(
            avg(true) > avg(false) + 0.1,
            "pos {} vs neg {}",
            avg(true),
            avg(false)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(EmFlavor::WalmartAmazon, &quick_cfg());
        let b = generate(EmFlavor::WalmartAmazon, &quick_cfg());
        assert_eq!(a.train_pairs.len(), b.train_pairs.len());
        assert_eq!(
            serialize_pair(&a.train_pairs[0].left, &a.train_pairs[0].right),
            serialize_pair(&b.train_pairs[0].left, &b.train_pairs[0].right)
        );
    }

    #[test]
    fn dirty_variant_misplaces_attributes() {
        let mut cfg = quick_cfg();
        cfg.dirty = true;
        let d = generate(EmFlavor::DblpAcm, &cfg);
        // Some records must have an empty attribute (the moved-out slot).
        let empties = d
            .train_pairs
            .iter()
            .flat_map(|p| p.left.attrs.iter().chain(&p.right.attrs))
            .filter(|(_, v)| v.is_empty())
            .count();
        assert!(
            empties > 0,
            "dirty variant produced no misplaced attributes"
        );
    }

    #[test]
    fn to_task_serializes_with_sep() {
        let d = generate(EmFlavor::AbtBuy, &quick_cfg());
        let t = d.to_task();
        assert_eq!(t.num_classes, 2);
        assert!(t.train_pool[0].tokens.contains(&"[SEP]".to_string()));
        assert_eq!(t.unlabeled.len(), t.train_pool.len());
    }

    #[test]
    fn blocking_passes_matches() {
        let d = generate(EmFlavor::DblpAcm, &quick_cfg());
        let passed = d
            .train_pairs
            .iter()
            .filter(|p| p.is_match)
            .filter(|p| blocked(&p.left, &p.right, 1))
            .count();
        let total = d.train_pairs.iter().filter(|p| p.is_match).count();
        assert!(passed as f32 / total as f32 > 0.95);
    }

    #[test]
    fn block_candidates_matches_pairwise_blocking() {
        let d = generate(EmFlavor::AbtBuy, &quick_cfg());
        let left: Vec<Record> = d
            .train_pairs
            .iter()
            .take(30)
            .map(|p| p.left.clone())
            .collect();
        let right: Vec<Record> = d
            .train_pairs
            .iter()
            .take(30)
            .map(|p| p.right.clone())
            .collect();
        // Tokenize each record once (the pre-tokenized variant must agree
        // with the per-pair API it replaces in hot loops).
        let lt: Vec<_> = left.iter().map(content_tokens).collect();
        let rt: Vec<_> = right.iter().map(content_tokens).collect();
        for min_shared in [0usize, 1, 2] {
            let fast = block_candidates(&left, &right, min_shared);
            for i in 0..left.len() {
                for j in 0..right.len() {
                    let expected = blocked(&left[i], &right[j], min_shared);
                    assert_eq!(
                        fast.contains(&(i, j)),
                        expected,
                        "pair ({i},{j}) at min_shared={min_shared}"
                    );
                    assert_eq!(
                        blocked_tokens(&lt[i], &rt[j], min_shared),
                        expected,
                        "pre-tokenized pair ({i},{j}) at min_shared={min_shared}"
                    );
                }
            }
        }
        // min_shared = 0 is documented as "no blocking": the full cross
        // product, in sorted order.
        let all = block_candidates(&left, &right, 0);
        assert_eq!(all.len(), left.len() * right.len());
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn blocking_recall_on_matches_is_high() {
        let d = generate(EmFlavor::DblpAcm, &quick_cfg());
        let matches: Vec<&LabeledPair> = d.train_pairs.iter().filter(|p| p.is_match).collect();
        let left: Vec<Record> = matches.iter().map(|p| p.left.clone()).collect();
        let right: Vec<Record> = matches.iter().map(|p| p.right.clone()).collect();
        let cands = block_candidates(&left, &right, 1);
        let recalled = (0..left.len()).filter(|&i| cands.contains(&(i, i))).count();
        assert!(recalled as f32 / left.len() as f32 > 0.95);
    }

    #[test]
    fn corpus_is_deterministic_and_chunkable() {
        let c = EmCorpus::new(CorpusConfig {
            num_entities: 200,
            ..Default::default()
        });
        // record() is index-addressable: any chunking yields the same rows.
        let whole = c.chunk(CorpusSide::Right, 0..200);
        let mut pieces = Vec::new();
        for chunk in c.chunks(CorpusSide::Right, 64) {
            pieces.extend(chunk);
        }
        assert_eq!(whole.len(), pieces.len());
        for (a, b) in whole.iter().zip(&pieces) {
            assert_eq!(a.attrs, b.attrs);
        }
        // And independent of the left side's generation.
        let again = c.record(CorpusSide::Right, 77);
        assert_eq!(again.attrs, whole[77].attrs);
    }

    #[test]
    fn corpus_match_pairs_overlap_heavily() {
        let c = EmCorpus::new(CorpusConfig {
            num_entities: 300,
            ..Default::default()
        });
        let mut blocked_pairs = 0usize;
        let mut jac = 0.0f32;
        for i in 0..300 {
            let l = c.record(CorpusSide::Left, i);
            let r = c.record(CorpusSide::Right, i);
            jac += jaccard(&l, &r);
            if blocked(&l, &r, 2) {
                blocked_pairs += 1;
            }
        }
        assert!(jac / 300.0 > 0.5, "mean match jaccard {}", jac / 300.0);
        assert!(
            blocked_pairs as f32 / 300.0 > 0.95,
            "match blocking recall {blocked_pairs}/300"
        );
    }

    #[test]
    fn corpus_stopwords_reach_every_record() {
        let c = EmCorpus::new(CorpusConfig {
            num_entities: 50,
            stopwords: 3,
            ..Default::default()
        });
        for i in 0..50 {
            let toks = content_tokens(&c.record(CorpusSide::Left, i));
            for stop in &CORPUS_STOPWORDS[..3] {
                assert!(toks.contains(*stop), "record {i} missing {stop}");
            }
        }
        // Distinct body words stay distinct (unique syllable composition).
        assert_eq!(corpus_word(0), corpus_word(0));
        let mut seen = std::collections::HashSet::new();
        for k in 0..20_000 {
            assert!(seen.insert(corpus_word(k)), "collision at {k}");
        }
    }

    #[test]
    fn all_em_tasks_yields_eight() {
        let cfg = EmConfig {
            num_entities: 20,
            train_pairs: 30,
            test_pairs: 10,
            ..Default::default()
        };
        let tasks = all_em_tasks(&cfg);
        assert_eq!(tasks.len(), 8);
        assert!(tasks.iter().filter(|t| t.name.ends_with("-dirty")).count() == 3);
    }
}
