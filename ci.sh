#!/bin/sh
# Repo CI gate: formatting, offline release build, full test suite, perf smoke.
set -eu
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test --offline"
cargo test -q --offline --workspace

echo "== gradcheck (autodiff vs central differences, every layer)"
cargo test -q --offline -p rotom-nn gradcheck
cargo test -q --offline -p rotom-nn --test gradcheck_layers

echo "== golden snapshots present"
if ! ls tests/golden/*.txt >/dev/null 2>&1; then
    echo "tests/golden/ has no snapshots; regenerate with" >&2
    echo "  ROTOM_BLESS=1 cargo test --test golden" >&2
    echo "and commit the files." >&2
    exit 1
fi

# The golden suite must be invariant to worker count: the pool is sized once
# per process (ROTOM_THREADS read at first use), so each count needs its own
# process invocation.
echo "== golden regression suite (ROTOM_THREADS=1)"
ROTOM_THREADS=1 cargo test -q --offline --test golden

echo "== golden regression suite (ROTOM_THREADS=8)"
ROTOM_THREADS=8 cargo test -q --offline --test golden

# Fault-injection suite: kill@step resume-equivalence, NaN rollback +
# graceful degradation, torn-checkpoint detection. Like the golden suite it
# must hold at any worker count, and the pool is sized once per process.
echo "== fault-injection suite (ROTOM_THREADS=1)"
ROTOM_THREADS=1 cargo test -q --offline --test fault_injection

echo "== fault-injection suite (ROTOM_THREADS=8)"
ROTOM_THREADS=8 cargo test -q --offline --test fault_injection

echo "== perfsmoke (writes BENCH_compute.json)"
cargo run --release --offline -p rotom-bench --bin perfsmoke

echo "== alloc budget (steady-state train step, ROTOM_THREADS pinned inside)"
cargo test -q --release --offline --test alloc_budget

# Regenerates BENCH_train.json and exits non-zero if steps/sec at any
# thread count drops more than 20% below the previously checked-in numbers.
echo "== trainbench perfsmoke (writes BENCH_train.json, gates steps/sec)"
cargo run --release --offline -p rotom-bench --bin trainbench -- --check

# Inference-plane gates: the tape-free forward must match the tape forward
# bit-for-bit at any worker count (pool sized once per process, so each
# count is its own invocation), with and without a live telemetry sink.
for t in 1 8; do
    echo "== inference-plane equivalence (ROTOM_THREADS=$t)"
    ROTOM_THREADS=$t cargo test -q --offline --test infer_equivalence \
        --test infer_equivalence_telemetry
done

# Regenerates BENCH_infer.json and exits non-zero if tape-free scoring or
# decode throughput regresses more than 20%, or the tape-free speedup over
# the tape path drops below its 2x floor, or the quantized i8 tier drops
# below its 1.5x-over-f32 floor.
echo "== inferbench (writes BENCH_infer.json, gates scoring throughput)"
cargo run --release --offline -p rotom-bench --bin inferbench -- --check

# Quantized i8 inference tier gates: kernel-level round-trip and GEMM
# relative-error property tests, then the accuracy-delta gate (a trained
# model's task metrics must not move when scored on the i8 tier, and
# switching back to f32 must be bit-exact). Both at worker counts 1 and 8 —
# the quant GEMM fans out over the pool on MR-row boundaries like the f32
# kernel, so each count exercises a different dispatch path.
for t in 1 8; do
    echo "== quant i8 property tests (ROTOM_THREADS=$t)"
    ROTOM_THREADS=$t cargo test -q --offline -p rotom-nn quant
    echo "== quant i8 accuracy-delta gate (ROTOM_THREADS=$t)"
    ROTOM_THREADS=$t cargo test -q --release --offline --test quant_accuracy
done

# Serving plane gates. The HTTP/1.1 parser property suite (torn reads,
# oversized heads, Content-Length abuse, pipelining, byte-level fuzz) and
# the batcher/plane unit tests live in the rotom-serve crate; the e2e suite
# boots the server on an ephemeral port and requires responses bit-identical
# to direct score_batch; the swap suite hammers /match while checkpoints hot
# swap underneath. The server's scoring pool width is explicit per batcher
# (no ROTOM_THREADS re-exec needed): the e2e test covers widths 1 and 8
# internally.
echo "== serving plane: HTTP parser property suite + unit tests"
cargo test -q --offline -p rotom-serve

echo "== serving plane: e2e over real sockets (score threads 1 and 8)"
cargo test -q --offline --test serve_e2e

echo "== serving plane: concurrent hot swap under load"
cargo test -q --offline --test serve_swap

# Chaos suite: serve-side ROTOM_FAULT faultpoints drive overload shedding
# (503 + Retry-After), graceful drain, batcher watchdog respawn, torn
# writes, and the connection cap — deterministically, over real sockets.
# Scoring-pool widths 1 and 8 are iterated inside each test; the two
# ROTOM_THREADS invocations additionally pin the process-global pool
# default at both widths (pool sized once per process, like the golden
# stanzas).
for t in 1 8; do
    echo "== serving plane: chaos suite (ROTOM_THREADS=$t)"
    ROTOM_THREADS=$t cargo test -q --offline --test serve_chaos
done

# Regenerates BENCH_serve.json (p50/p99 request latency + req/sec at scoring
# widths 1 and 8) and exits non-zero on a >20% req/sec regression or a p99
# step-function blowup. The overload rows gate degradation shape under
# 2x+-capacity offered load: excess requests must shed (never silently
# queue) and the p99 of accepted requests must stay within 4x the deadline
# budget.
echo "== servebench (writes BENCH_serve.json, gates serving throughput + overload shape)"
cargo run --release --offline -p rotom-bench --bin servebench -- --check

# Blocking plane gates. The equivalence/property suite proves the sharded
# streaming pipeline bit-identical to exhaustive block_candidates across
# shard counts {1,2,7} and pool widths {1,8}, holds the LSH-tier recall
# floor on known match pairs, and bounds the candidate buffer; the two
# ROTOM_THREADS invocations additionally pin the process-global pool at
# both widths (pool sized once per process, like the golden stanzas).
for t in 1 8; do
    echo "== blocking plane: equivalence + streaming suite (ROTOM_THREADS=$t)"
    ROTOM_THREADS=$t cargo test -q --offline --test blocking_pipeline
    ROTOM_THREADS=$t cargo test -q --offline -p rotom-datasets blocking
done

# Regenerates BENCH_blocking.json (1M-record index build + streamed
# candidate emission at worker counts 1 and 8) and exits non-zero if the
# scale row indexes fewer than 1M records, slice recall vs exhaustive
# blocked() drops below 0.95, the stress row's df ceiling stops pruning, or
# pairs/sec regresses more than 20%.
echo "== blockbench (writes BENCH_blocking.json, gates recall + throughput)"
cargo run --release --offline -p rotom-bench --bin blockbench -- --check

# Telemetry smoke: a short Rotom training with the observability plane live
# must emit schema-valid JSONL covering the step, meta-decision,
# augmentation, and pool record kinds — at 1 worker (inline paths) and at 8
# (fan-out paths). Goldens-with-telemetry-off invariance is what the golden
# stanzas above already assert, since they run with ROTOM_TELEMETRY unset.
for t in 1 8; do
    echo "== telemetry smoke (ROTOM_THREADS=$t)"
    TLOG="target/telemetry_smoke_${t}.jsonl"
    ROTOM_BENCH_SCALE=quick ROTOM_TELEMETRY="$TLOG" ROTOM_THREADS=$t \
        cargo run --release --offline -p rotom-bench --bin rotom_cli -- \
        sst-2 rotom 24 0 >/dev/null
    cargo run --release --offline -p rotom-bench --bin telemetry_report -- \
        "$TLOG" --check --require step,meta,aug,pool
done

echo "CI OK"
