#!/bin/sh
# Repo CI gate: formatting, offline release build, full test suite, perf smoke.
set -eu
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test --offline"
cargo test -q --offline --workspace

echo "== perfsmoke (writes BENCH_compute.json)"
cargo run --release --offline -p rotom-bench --bin perfsmoke

echo "CI OK"
